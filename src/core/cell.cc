#include "src/core/cell.h"

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {
namespace {

// Kernel text + static data + heap region at the bottom of each cell's
// memory ("OS internal data" in paper figure 3.1).
constexpr uint64_t kKernelRegionBytes = 4ull * 1024 * 1024;

}  // namespace

Cell::Cell(HiveSystem* system, CellId id, int first_node, int num_nodes)
    : system_(system), id_(id), first_node_(first_node), num_nodes_(num_nodes) {
  const flash::MachineConfig& config = system->machine().config();
  mem_base_ = static_cast<PhysAddr>(first_node) * config.memory_per_node;
  mem_size_ = static_cast<uint64_t>(num_nodes) * config.memory_per_node;
  for (int node = first_node; node < first_node + num_nodes; ++node) {
    for (int c = 0; c < config.cpus_per_node; ++c) {
      cpus_.push_back(node * config.cpus_per_node + c);
    }
  }
}

Cell::~Cell() = default;

flash::Machine& Cell::machine() const { return system_->machine(); }

const KernelCosts& Cell::costs() const { return system_->costs(); }

uint64_t Cell::CpuMask() const {
  uint64_t mask = 0;
  for (int cpu : cpus_) {
    mask |= 1ull << cpu;
  }
  return mask;
}

Ctx Cell::MakeCtx(int cpu_index) {
  Ctx ctx;
  ctx.cell = this;
  ctx.cpu = cpus_[static_cast<size_t>(cpu_index)];
  ctx.start = machine().Now();
  return ctx;
}

void Cell::ChargeSyscallTax(Ctx& ctx) {
  if (!system_->smp_mode()) {
    ctx.Charge(costs().hive_syscall_tax_ns);
  }
}

uint64_t Cell::ReadOwnClock() const {
  // hive-lint: allow(R1): the cell reads its own clock word in local memory; not an intercell access.
  return machine().mem().ReadValue<uint64_t>(cpus_.front(), clock_word_addr_);
}

void Cell::Boot() {
  state_ = CellState::kBooting;
  ++incarnation_;
  panic_reason_.clear();
  in_recovery_ = false;
  user_suspended_until_ = 0;
  clock_ticks_ = 0;
  rogue_ = RogueBehavior{};
  rogue_garbage_state_ = 0;
  chain_head_addr_ = 0;
  chain_node_addrs_.clear();
  seq_block_addr_ = 0;

  // Kernel heap at the bottom of the cell's first node.
  heap_ = std::make_unique<KernelHeap>(&machine().mem(), FirstCpu(), mem_base_,
                                       kKernelRegionBytes);

  // The clock word other cells monitor (section 4.3).
  auto clock = heap_->Alloc(kTagClockWord, sizeof(uint64_t));
  CHECK(clock.ok());
  clock_word_addr_ = *clock;
  heap_->Write<uint64_t>(clock_word_addr_, 1);

  if (pageout_ != nullptr) {
    pageout_->Stop();
  }
  rpc_ = std::make_unique<RpcLayer>(this, system_, costs());
  pfdat_table_.Clear();
  allocator_ = std::make_unique<PageAllocator>(this);
  cow_ = std::make_unique<CowManager>(this);
  sched_ = std::make_unique<Scheduler>(this);
  fwm_ = std::make_unique<FirewallManager>(this);
  detector_ = std::make_unique<FailureDetector>(this);
  pageout_ = std::make_unique<PageoutDaemon>(this);
  swap_ = std::make_unique<SwapArea>(this);
  if (fs_ == nullptr) {
    fs_ = std::make_unique<FileSystem>(this);
  }
  wax_hints_ = WaxHints{};

  // Wild write defense: protect every local page so only this cell's
  // processors may write it; grants are opened per-page on demand
  // (section 4.2). The SMP baseline runs with checking disabled instead.
  if (!system_->smp_mode()) {
    fwm_->ProtectRange(mem_base_, mem_size_);
  }

  // Build the pfdat table for paged memory: everything above the kernel
  // region, across all of the cell's nodes.
  const uint64_t page_size = machine().mem().page_size();
  paged_frames_ = 0;
  for (PhysAddr frame = mem_base_ + kKernelRegionBytes; frame < mem_base_ + mem_size_;
       frame += page_size) {
    allocator_->AddBootFrame(pfdat_table_.AddRegular(frame));
    ++paged_frames_;
  }

  RegisterMiscHandlers();
  fs_->RegisterHandlers();

  state_ = CellState::kRunning;
  Trace(TraceEvent::kBoot);
  if (system_->slo_recorder() != nullptr) {
    system_->slo_recorder()->NoteCellUp(id_, machine().Now());
  }
  StartClock();
  pageout_->Start();
}

void Cell::RegisterMiscHandlers() {
  rpc_->RegisterInterrupt(MsgType::kNull,
                          [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
  rpc_->RegisterQueued(MsgType::kNullQueued,
                       [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
  rpc_->RegisterInterrupt(MsgType::kPing, [](Ctx& sctx, const RpcArgs&, RpcReply*) {
    sctx.Charge(500);
    return base::OkStatus();
  });

  rpc_->RegisterInterrupt(
      MsgType::kWaxHint, [this](Ctx& sctx, const RpcArgs& args, RpcReply*) -> base::Status {
        sctx.Charge(800);
        // Sanity-check everything received from Wax (section 3.2): bogus
        // hints are dropped, never trusted.
        const CellId borrow = static_cast<CellId>(args.w[0]);
        const CellId fork = static_cast<CellId>(args.w[1]);
        WaxHints hints;
        if (borrow >= 0 && borrow < system_->num_cells() &&
            system_->cell(borrow).alive()) {
          hints.preferred_borrow_target = borrow;
        }
        if (fork >= 0 && fork < system_->num_cells() && system_->cell(fork).alive()) {
          hints.preferred_fork_target = fork;
        }
        hints.valid = true;
        wax_hints_ = hints;
        return base::OkStatus();
      });

  // Frame loans and firewall grants mutate remote-visible state, so they go
  // through the at-most-once path: a retransmitted or duplicated request
  // must not loan a second batch of frames or double-grant a page.
  rpc_->RegisterInterruptAtMostOnce(
      MsgType::kBorrowFrames,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        const CellId client = static_cast<CellId>(args.w[0]);
        const int count = static_cast<int>(std::min<uint64_t>(args.w[1], kRpcWords - 1));
        if (client < 0 || client >= system_->num_cells() || client == id_) {
          return base::InvalidArgument();
        }
        const std::vector<PhysAddr> frames = allocator_->LoanFrames(sctx, client, count);
        reply->w[0] = frames.size();
        for (size_t i = 0; i < frames.size(); ++i) {
          reply->w[1 + i] = frames[i];
        }
        return frames.empty() ? base::OutOfMemory() : base::OkStatus();
      });

  rpc_->RegisterInterruptAtMostOnce(
      MsgType::kReturnFrame,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply*) -> base::Status {
        const CellId client = static_cast<CellId>(args.w[0]);
        if (client < 0 || client >= system_->num_cells()) {
          return base::InvalidArgument();
        }
        return allocator_->AcceptReturnedFrame(sctx, args.w[1], client);
      });

  rpc_->RegisterInterruptAtMostOnce(
      MsgType::kGrantFirewall,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply*) -> base::Status {
        const PhysAddr frame = args.w[0];
        const CellId client = static_cast<CellId>(args.w[1]);
        if (!OwnsAddr(frame)) {
          return base::InvalidArgument();
        }
        return fwm_->GrantWrite(sctx, machine().mem().PfnOfAddr(frame), client);
      });

  rpc_->RegisterInterrupt(
      MsgType::kRevokeFirewall,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply*) -> base::Status {
        const PhysAddr frame = args.w[0];
        const CellId client = static_cast<CellId>(args.w[1]);
        if (!OwnsAddr(frame)) {
          return base::InvalidArgument();
        }
        return fwm_->RevokeWrite(sctx, machine().mem().PfnOfAddr(frame), client);
      });

  rpc_->RegisterInterrupt(
      MsgType::kCowBind,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        const uint64_t node_id = args.w[0];
        const uint64_t offset = args.w[1];
        const CellId client = static_cast<CellId>(args.w[2]);
        const bool writable = args.w[3] != 0;
        if (client < 0 || client >= system_->num_cells() || client == id_) {
          return base::InvalidArgument();
        }
        sctx.Charge(costs().fault_home_vm_misc_ns + costs().fault_export_ns);
        if (sctx.fault_bd != nullptr) {
          sctx.fault_bd->home_vm_misc += costs().fault_home_vm_misc_ns;
          sctx.fault_bd->home_export += costs().fault_export_ns;
        }
        LogicalPageId lpid;
        lpid.kind = LogicalPageId::Kind::kAnon;
        lpid.data_home = id_;
        lpid.object = node_id;
        lpid.page_offset = offset;
        Pfdat* pfdat = pfdat_table_.FindByLpid(lpid);
        if (pfdat == nullptr && swap_->Contains(lpid)) {
          // Swapped out at the owner: a remote bind swaps it back in (the
          // interrupt-level fault falls back to queued service for the I/O).
          sctx.Charge(costs().rpc_queue_service_ns);
          auto swapped = swap_->SwapIn(sctx, lpid);
          RETURN_IF_ERROR(swapped.status());
          pfdat = *swapped;
          pfdat->refcount--;
        }
        if (pfdat == nullptr) {
          return base::NotFound();
        }
        pfdat->exported_to |= 1ull << client;
        if (writable && (pfdat->exported_writable & (1ull << client)) == 0) {
          pfdat->exported_writable |= 1ull << client;
          if (OwnsAddr(pfdat->frame)) {
            RETURN_IF_ERROR(
                fwm_->GrantWrite(sctx, machine().mem().PfnOfAddr(pfdat->frame), client));
          }
        }
        reply->w[0] = pfdat->frame;
        return base::OkStatus();
      });

  rpc_->RegisterInterrupt(
      MsgType::kKillProc,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply*) -> base::Status {
        Process* proc = sched_->FindProcess(static_cast<ProcId>(args.w[0]));
        if (proc == nullptr) {
          return base::NotFound();
        }
        sched_->KillProcess(sctx, proc, "killed by remote signal");
        return base::OkStatus();
      });
}

void Cell::StartClock() {
  clock_event_ = machine().events().ScheduleAfter(costs().clock_tick_period_ns,
                                                  [this] { ClockTick(); });
}

void Cell::ClockTick() {
  base::SimProfileScope profile_scope(base::SimSubsystem::kScheduler);
  if (state_ != CellState::kRunning) {
    return;
  }
  // The hardware may have failed this cell's node since the last tick.
  for (int node = first_node_; node < first_node_ + num_nodes_; ++node) {
    if (machine().NodeDead(node)) {
      MarkDead();
      return;
    }
  }

  Ctx ctx = MakeCtx(0);
  ++clock_ticks_;
  // Rogue clock axes: a frozen clock word never advances (caught by the
  // peer's stale check); a drifting one advances at a fraction of the tick
  // rate (caught by the peer's drift window).
  const bool skip_increment =
      rogue_.active && (rogue_.clock_freeze ||
                        (rogue_.clock_drift &&
                         clock_ticks_ % static_cast<uint64_t>(rogue_.clock_drift_divisor) != 0));
  if (!skip_increment) {
    try {
      const uint64_t value = heap_->Read<uint64_t>(clock_word_addr_);
      heap_->Write<uint64_t>(clock_word_addr_, value + 1);
      // hive-lint: allow(R3): bus error outside a careful section panics this kernel (paper 4.1) -- the required conversion IS the panic.
    } catch (const flash::BusError& e) {
      Panic(std::string("bus error updating own clock: ") + e.what());
      return;
    }
  }

  if (!system_->smp_mode() && system_->num_cells() > 1) {
    detector_->MonitorPeerClock(ctx);
  }
  if (state_ == CellState::kRunning) {
    StartClock();
  }
}

void Cell::SetRogueBehavior(const RogueBehavior& behavior) {
  rogue_ = behavior;
  // SplitMix64-style state for the garbage stream; never zero so the first
  // scribble is already non-trivial.
  rogue_garbage_state_ = behavior.garbage_seed | 1;
}

uint64_t Cell::NextRogueGarbage() {
  // SplitMix64: deterministic per-cell scribble stream.
  uint64_t z = (rogue_garbage_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Cell::PublishProbeStructures() {
  if (chain_head_addr_ != 0 || state_ != CellState::kRunning) {
    return;
  }
  // A short chain of tagged {value, next} nodes; survivors walk it with
  // CarefulRef::ChaseChain. Values are a deterministic function of the cell
  // id so a consistent walk is recognizable.
  constexpr int kChainLen = 4;
  for (int i = 0; i < kChainLen; ++i) {
    auto node = heap_->Alloc(kTagChainNode, 2 * sizeof(uint64_t));
    CHECK(node.ok());
    chain_node_addrs_.push_back(*node);
  }
  for (int i = 0; i < kChainLen; ++i) {
    const PhysAddr addr = chain_node_addrs_[static_cast<size_t>(i)];
    heap_->Write<uint64_t>(addr, (static_cast<uint64_t>(id_) << 8) | static_cast<uint64_t>(i));
    const PhysAddr next =
        i + 1 < kChainLen ? chain_node_addrs_[static_cast<size_t>(i + 1)] : 0;
    heap_->Write<uint64_t>(addr + 8, next);
  }
  chain_head_addr_ = chain_node_addrs_.front();

  // A seqlock block {seq, word0, word1} with word1 == ~word0 as the
  // consistency invariant; survivors read it with CarefulRef::ReadSeqlocked.
  auto block = heap_->Alloc(kTagSeqBlock, 3 * sizeof(uint64_t));
  CHECK(block.ok());
  seq_block_addr_ = *block;
  const uint64_t word0 = 0x5EED000000000000ull | static_cast<uint64_t>(id_);
  heap_->Write<uint64_t>(seq_block_addr_, 2);  // Even: no update in progress.
  heap_->Write<uint64_t>(seq_block_addr_ + 8, word0);
  heap_->Write<uint64_t>(seq_block_addr_ + 16, ~word0);
}

void Cell::SuspendUsersUntil(Time t) {
  user_suspended_until_ = std::max(user_suspended_until_, t);
}

bool Cell::AdmitRequest() {
  const HiveOptions& options = system_->options();
  const size_t runq = sched_->runnable();
  const uint64_t heap_used = heap_->bytes_in_use();
  const bool runq_over =
      options.admit_runq_watermark != 0 && runq >= options.admit_runq_watermark;
  const bool heap_over = options.admit_heap_watermark_bytes != 0 &&
                         heap_used >= options.admit_heap_watermark_bytes;
  if (!runq_over && !heap_over) {
    return true;
  }
  Trace(TraceEvent::kAdmissionShed, runq, heap_used);
  if (system_->slo_recorder() != nullptr) {
    system_->slo_recorder()->NoteShed(id_);
  }
  return false;
}

void Cell::Panic(const std::string& reason) {
  if (state_ == CellState::kPanicked || state_ == CellState::kDead) {
    return;
  }
  LOG(kInfo) << "cell " << id_ << " PANIC: " << reason << " (t=" << machine().Now() << ")";
  Trace(TraceEvent::kPanic);
  state_ = CellState::kPanicked;
  panic_reason_ = reason;
  if (system_->slo_recorder() != nullptr) {
    system_->slo_recorder()->NoteCellDown(id_, machine().Now());
  }
  // Memory cutoff (table 8.1): prevent the spread of potentially corrupt
  // data, then halt.
  for (int node = first_node_; node < first_node_ + num_nodes_; ++node) {
    machine().CutOffNode(node);
  }
  for (int cpu : cpus_) {
    machine().cpu(cpu).halted = true;
  }
  machine().events().Cancel(clock_event_);
  clock_event_ = flash::kInvalidEventId;
  pageout_->Stop();
}

void Cell::MarkDead() {
  if (state_ == CellState::kDead) {
    return;
  }
  Trace(TraceEvent::kMarkedDead);
  state_ = CellState::kDead;
  if (system_->slo_recorder() != nullptr) {
    system_->slo_recorder()->NoteCellDown(id_, machine().Now());
  }
  for (int node = first_node_; node < first_node_ + num_nodes_; ++node) {
    if (!machine().NodeDead(node)) {
      machine().CutOffNode(node);
    }
  }
  for (int cpu : cpus_) {
    machine().cpu(cpu).halted = true;
  }
  machine().events().Cancel(clock_event_);
  clock_event_ = flash::kInvalidEventId;
  if (pageout_ != nullptr) {
    pageout_->Stop();
  }
}

void Cell::Reboot() {
  Trace(TraceEvent::kReboot);
  state_ = CellState::kRebooting;
  for (int cpu : cpus_) {
    machine().cpu(cpu).halted = false;
    machine().cpu(cpu).free_at = machine().Now();
  }
  if (fs_ != nullptr) {
    fs_->OnReboot();
  }
  Boot();
}

}  // namespace hive
