// The careful reference protocol (paper section 4.1). One cell reads
// another's internal data structures directly when RPCs are too slow, an
// up-to-date view is required, or the data is published to many cells.
// The reading cell follows five steps:
//
//   1. careful_on: capture the current context and record which remote cell
//      the kernel intends to access; bus errors while reading that cell's
//      memory unwind here instead of panicking the reader.
//   2. Before using any remote address: check alignment for the expected
//      structure and that it addresses the memory range of the expected cell.
//   3. Copy all data values to local memory before sanity checks, to defend
//      against values changing mid-operation.
//   4. Check each remote structure's type identifier, written by the memory
//      allocator and removed by the deallocator.
//   5. careful_off: future bus errors once again panic the reader.
//
// In this model the trap capture is a scoped object: constructing a
// CarefulRef is careful_on, destruction is careful_off, and the simulated
// BusError exception is caught inside Read*() and converted to a Status.

#ifndef HIVE_SRC_CORE_CAREFUL_REF_H_
#define HIVE_SRC_CORE_CAREFUL_REF_H_

#include <functional>
#include <span>
#include <vector>

#include "src/base/sim_profile.h"
#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/costs.h"
#include "src/core/kernel_heap.h"
#include "src/core/types.h"
#include "src/flash/phys_mem.h"

namespace hive {

// Layout of a remote singly linked chain node walked by ChaseChain. Published
// as a tagged kernel-heap allocation; `next` is the physical address of the
// next node's payload, 0 terminates.
struct RemoteChainNode {
  uint64_t value = 0;
  PhysAddr next = 0;
};

// Layout of a remote seqlock-published block read by ReadSeqlocked. The
// writer increments `seq` to odd before updating the payload words and to
// even after; a reader that observes an odd or changed `seq` retries.
struct RemoteSeqBlock {
  uint64_t seq = 0;
  uint64_t word0 = 0;
  uint64_t word1 = 0;
};

// Result of a bounded chain walk: copied-out node values, hop count.
struct ChainWalk {
  std::vector<uint64_t> values;
  int hops = 0;
};

// Consistent two-word snapshot extracted from a RemoteSeqBlock.
struct SeqSnapshot {
  uint64_t word0 = 0;
  uint64_t word1 = 0;
  int retries = 0;
};

class CarefulRef {
 public:
  // Begins a careful section on behalf of ctx->cpu, intending to access the
  // remote cell whose memory spans [range_base, range_base + range_size).
  CarefulRef(Ctx* ctx, flash::PhysMem* mem, const KernelCosts& costs, CellId target_cell,
             PhysAddr range_base, uint64_t range_size);
  ~CarefulRef();

  CarefulRef(const CarefulRef&) = delete;
  CarefulRef& operator=(const CarefulRef&) = delete;

  // Step 2: validity check without an access.
  base::Status CheckAddr(PhysAddr addr, uint64_t size, uint64_t alignment) const;

  // Steps 2+3: checked, copied-out read of a trivially copyable value.
  template <typename T>
  base::Result<T> Read(PhysAddr addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    RETURN_IF_ERROR_RESULT(CheckAddr(addr, sizeof(T), alignof(T)));
    ChargeAccessAt(addr, sizeof(T));
    try {
      return mem_->ReadValue<T>(ctx_->cpu, addr);
    } catch (const flash::BusError&) {
      bus_error_seen_ = true;
      ctx_->Charge(costs_.failed_access_stall_ns);
      return base::BusErrorStatus();
    }
  }

  // Steps 2-4: reads a kernel-heap allocation of the expected type tag.
  // `payload` must point at the allocation payload; the header directly below
  // it is validated (magic + tag) before the payload is copied out.
  template <typename T>
  base::Result<T> ReadTagged(PhysAddr payload, uint32_t expected_tag) {
    RETURN_IF_ERROR_RESULT(CheckTag(payload, expected_tag));
    return Read<T>(payload);
  }

  // Step 4 alone: validates the allocation header below `payload`.
  base::Status CheckTag(PhysAddr payload, uint32_t expected_tag);

  base::Status ReadBytes(PhysAddr addr, std::span<uint8_t> out);

  // Bounded pointer chase over a remote chain of RemoteChainNode allocations
  // tagged `expected_tag`. Every hop revalidates address range, alignment and
  // type tag; visiting a payload address twice fails with kBadRemoteData
  // (cycle), and exceeding `max_hops` fails with kResourceExhausted rather
  // than looping — a rogue peer can corrupt its own structures but cannot
  // make the reader hang. `detect_cycles` exists only so the campaign's
  // no_hop_bound fixture can demonstrate the no-survivor-hang oracle firing.
  base::Result<ChainWalk> ChaseChain(PhysAddr head, uint32_t expected_tag, int max_hops,
                                     bool detect_cycles = true);

  // Seqlock-style generation-retry read of a RemoteSeqBlock tagged
  // `expected_tag`: the payload words are only returned when the sequence
  // word is even and unchanged across the copy-out. Retries a torn snapshot
  // up to `max_retries` times, then fails with kBadRemoteData (the structure
  // is persistently torn — a writer died or went rogue mid-update).
  base::Result<SeqSnapshot> ReadSeqlocked(PhysAddr block, uint32_t expected_tag,
                                          int max_retries);

  // Hop count of the most recent ChaseChain, including the failed attempt
  // paths; lets callers account bounded work for the no-survivor-hang oracle.
  int last_chain_hops() const { return last_chain_hops_; }

  // Test seam: the simulator is synchronous, so a torn write can never
  // complete "concurrently" with a retry loop. Tests install a hook that runs
  // between seqlock attempts (argument = retries so far) to finish the write.
  void set_retry_hook_for_test(std::function<void(int)> hook) {
    retry_hook_ = std::move(hook);
  }

  bool bus_error_seen() const { return bus_error_seen_; }

 private:
  // Charges the per-access protocol cost plus a remote miss for every line
  // of [addr, addr+bytes) not already fetched in this careful section.
  void ChargeAccessAt(PhysAddr addr, uint64_t bytes);

  // Attribute the whole careful section (bench schema v2): constructed
  // first, so the scope spans careful_on through careful_off.
  base::SimProfileScope profile_scope_{base::SimSubsystem::kCarefulRpc};
  Ctx* ctx_;
  flash::PhysMem* mem_;
  const KernelCosts& costs_;
  CellId target_cell_;
  PhysAddr range_base_;
  uint64_t range_size_;
  bool bus_error_seen_ = false;
  int last_chain_hops_ = 0;
  std::function<void(int)> retry_hook_;
  // Last 128-byte line touched: repeated accesses to the same line (e.g. an
  // allocation tag followed by the adjacent payload) cost no extra miss.
  uint64_t last_line_ = ~0ull;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_CAREFUL_REF_H_
