// Page frame data structures (paper section 5.1-5.2).
//
// Each page frame in paged memory is managed by a pfdat recording the logical
// page id of the data stored in the frame. Pfdats are linked into a hash
// table for lookup by logical page id. When a cell needs to access a page of
// another cell it allocates an *extended* pfdat binding the remote physical
// address to a local hash entry, after which most kernel modules operate on
// the page without knowing it is remote.
//
// Logical-level sharing state (export/import) and physical-level sharing
// state (loan/borrow) use separate storage within each pfdat, so a frame can
// be simultaneously loaned out and imported back (paper section 5.5).

#ifndef HIVE_SRC_CORE_PFDAT_H_
#define HIVE_SRC_CORE_PFDAT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/core/types.h"

namespace hive {

struct Pfdat {
  // Identity: the frame this pfdat manages. For a regular pfdat the frame is
  // in the owning cell's memory; for an extended pfdat it is remote.
  PhysAddr frame = flash::kInvalidPhysAddr;
  bool extended = false;

  // Logical binding: which data page currently lives in the frame.
  LogicalPageId lpid;  // kind == kInvalid when the frame holds no data.
  bool dirty = false;
  Generation generation = 0;  // Snapshot of the file generation at bind time.
  int refcount = 0;           // Local references (mappings, ongoing I/O).

  // --- Logical-level sharing: data home side. ---
  uint64_t exported_to = 0;        // Bitmask of client cells using this page.
  uint64_t exported_writable = 0;  // Clients granted write access.

  // --- Logical-level sharing: client side. ---
  CellId imported_from = kInvalidCell;  // Data home, for imported pages.
  bool import_writable = false;         // Write access was granted to us.

  // --- Physical-level sharing: memory home side. ---
  bool loaned_out = false;
  CellId loaned_to = kInvalidCell;

  // --- Physical-level sharing: borrower side. ---
  CellId borrowed_from = kInvalidCell;  // Memory home, for borrowed frames.

  // --- Salvage bookkeeping (HiveOptions::salvage_pages only). ---
  // Content checksum recorded by the data home when the page was last written
  // through a checked kernel path, plus the file generation at that moment.
  // Recovery may adopt (rather than discard) a page writable by a failed
  // cell only if recomputing the checksum over the frame matches and the
  // generation is unchanged -- any unchecked store (a wild write) breaks the
  // match and forces the discard.
  uint64_t salvage_sum = 0;
  Generation salvage_gen = 0;
  bool salvage_sum_valid = false;

  bool HasLogicalBinding() const { return lpid.valid(); }
};

// Per-cell pfdat table + hash (paper figure 5.3). Owns regular pfdats for
// every local paged frame and dynamically allocated extended pfdats.
//
// Pfdats are carved out of a slab arena (fixed-size blocks, recycled through
// a free list) instead of one heap allocation per page: boot allocates one
// slab per kSlabPfdats frames and the borrow/return churn of extended pfdats
// reuses slots without touching the host allocator. Pfdat pointers are stable
// for the life of the table (slabs never move).
class PfdatTable {
 public:
  PfdatTable() = default;

  // Registers a regular pfdat for a local frame (called at cell boot).
  Pfdat* AddRegular(PhysAddr frame);

  // Allocates an extended pfdat bound to a remote frame.
  Pfdat* AddExtended(PhysAddr frame);

  // Removes an extended pfdat (release/return_frame).
  void RemoveExtended(Pfdat* pfdat);

  // Frame index: any pfdat (regular or extended) for this frame address.
  Pfdat* FindByFrame(PhysAddr frame);

  // Logical page hash.
  Pfdat* FindByLpid(const LogicalPageId& lpid);
  void InsertHash(Pfdat* pfdat);
  void RemoveHash(Pfdat* pfdat);

  // Enumeration for recovery scans. Visits pfdats in ascending frame order:
  // several callers bound or order their side effects by visit order
  // (pageout passes stop at max_pages, recovery scans build drop lists), so
  // container iteration order must not leak into simulation outcomes
  // (determinism purity, lint R10). Regular pfdats are kept frame-sorted
  // (boot adds them in ascending order) and extended pfdats live in an
  // ordered map, so the merged walk needs no per-call sort. Extended entries
  // are snapshotted first because `fn` may call RemoveExtended/AddExtended;
  // mutations during the walk affect membership exactly like the old
  // snapshot-and-sort implementation did.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    // Borrow the scratch buffer's capacity; a reentrant walk just gets a
    // fresh (empty) vector.
    std::vector<Pfdat*> extended;
    extended.swap(foreach_scratch_);
    extended.clear();
    extended.reserve(extended_by_frame_.size());
    for (const auto& [frame, pfdat] : extended_by_frame_) {
      extended.push_back(pfdat);
    }
    size_t ri = 0;
    size_t ei = 0;
    const size_t rn = regulars_.size();
    const size_t en = extended.size();
    while (ri < rn || ei < en) {
      if (ei == en || (ri < rn && regulars_[ri]->frame < extended[ei]->frame)) {
        fn(regulars_[ri++]);
      } else {
        fn(extended[ei++]);
      }
    }
    foreach_scratch_.swap(extended);
  }

  size_t hash_size() const { return by_lpid_.size(); }
  size_t total_pfdats() const { return regulars_.size() + extended_by_frame_.size(); }

  // Arena introspection (tests): slabs allocated so far.
  size_t arena_slabs() const { return slabs_.size(); }

  // Reboot: drops everything. Slab memory is retained and recycled by the
  // next boot's allocations.
  void Clear() {
    by_lpid_.clear();
    regulars_.clear();
    dense_regular_.clear();
    dense_base_ = 0;
    dense_stride_ = 0;
    extended_by_frame_.clear();
    free_slots_.clear();
    slab_used_ = slabs_.empty() ? kSlabPfdats : 0;
    slab_cursor_ = 0;
  }

  static constexpr size_t kSlabPfdats = 256;

 private:
  Pfdat* AllocateSlot();
  void ReleaseSlot(Pfdat* pfdat);

  Pfdat* FindRegular(PhysAddr frame);

  // Slab arena: blocks never move, so Pfdat* stays valid until Clear().
  std::vector<std::unique_ptr<Pfdat[]>> slabs_;
  size_t slab_cursor_ = 0;             // Slab currently being carved.
  size_t slab_used_ = kSlabPfdats;     // Slots used in that slab (full = new slab).
  std::vector<Pfdat*> free_slots_;     // Recycled slots (RemoveExtended).

  // Regular (local-frame) pfdats, in ascending frame order. Boot adds local
  // frames at a uniform stride, so FindByFrame on the fault path resolves
  // through the O(1) dense index; if an AddRegular call ever breaks the
  // stride pattern the dense index is abandoned and lookups binary-search
  // `regulars_` instead.
  std::vector<Pfdat*> regulars_;
  std::vector<Pfdat*> dense_regular_;  // index = (frame - base) / stride.
  PhysAddr dense_base_ = 0;
  uint64_t dense_stride_ = 0;          // 0 = not (or no longer) dense.

  // Extended (remote-frame) pfdats, ordered by frame so ForEach can merge.
  std::map<PhysAddr, Pfdat*> extended_by_frame_;

  std::unordered_map<LogicalPageId, Pfdat*, LogicalPageIdHash> by_lpid_;
  std::vector<Pfdat*> foreach_scratch_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_PFDAT_H_
