#include "src/core/slo.h"

namespace hive {

void SloRecorder::NoteCellDown(CellId cell, Time now) {
  CellSloStats& s = cells_[cell];
  if (s.down) {
    return;
  }
  s.down = true;
  s.down_since = now;
}

void SloRecorder::NoteCellUp(CellId cell, Time now) {
  CellSloStats& s = cells_[cell];
  if (!s.down) {
    return;
  }
  s.down = false;
  s.down_ns += now - s.down_since;
}

void SloRecorder::NoteSuspension(CellId cell, Time from, Time until) {
  if (until > from) {
    cells_[cell].suspended_ns += until - from;
  }
}

void SloRecorder::Finish(Time end) {
  for (size_t c = 0; c < cells_.size(); ++c) {
    NoteCellUp(static_cast<CellId>(c), end);
  }
}

double SloRecorder::Availability(size_t id, Time window_ns) const {
  if (window_ns == 0) {
    return 1.0;
  }
  const CellSloStats& s = cells_[id];
  Time unavailable = s.down_ns + s.suspended_ns;
  if (unavailable > window_ns) {
    unavailable = window_ns;
  }
  return static_cast<double>(window_ns - unavailable) / static_cast<double>(window_ns);
}

}  // namespace hive
