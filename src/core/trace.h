// Per-cell kernel event trace: a fixed-size ring of timestamped events for
// debugging the complex sequences that follow a fault (the role SimOS's
// deterministic replay played for the original authors, section 7.4).
//
// Tracing is always on but cheap (one ring slot per event, no allocation);
// the ring survives a panic so the post-mortem shows what the cell did last.

#ifndef HIVE_SRC_CORE_TRACE_H_
#define HIVE_SRC_CORE_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace hive {

enum class TraceEvent : uint8_t {
  kBoot,
  kPanic,
  kMarkedDead,
  kReboot,
  kHintRaised,        // arg0 = suspect, arg1 = reason.
  kEnterRecovery,     // arg0 = failed cell.
  kExitRecovery,      // arg0 = pages discarded.
  kPageDiscarded,     // arg0 = frame.
  kRpcTimeout,        // arg0 = target cell.
  kSwapOut,           // arg0 = frame.
  kSwapIn,            // arg0 = frame.
  kPageMigrated,      // arg0 = old frame, arg1 = new frame.
  kProcessKilled,     // arg0 = pid.
  kInvariantMismatch, // arg0 = pfn, arg1 = unauthorized permission bits.
  kRpcRetry,          // arg0 = target cell.
  kRpcDuplicateSuppressed,  // arg0 = client cell.
  kPeerQuarantined,   // arg0 = peer cell.
  kPeerUnquarantined, // arg0 = peer cell.
  kVoteCast,          // arg0 = suspect, arg1 = vote (0=against, 1=for, 2=timeout).
  kCellExcised,       // arg0 = excised cell.
  kPageSalvaged,      // arg0 = frame, arg1 = failed cell.
  kSalvageRejected,   // arg0 = frame, arg1 = failed cell.
  kReintegrationStart,  // arg0 = rejoining cell.
  kReintegrationDone,   // arg0 = rejoining cell.
  kAdmissionShed,       // arg0 = run-queue depth, arg1 = kernel heap bytes in use.
};

const char* TraceEventName(TraceEvent event);

struct TraceRecord {
  Time when = 0;
  TraceEvent event = TraceEvent::kBoot;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 256;
  static_assert((kCapacity & (kCapacity - 1)) == 0,
                "ring index masking requires a power-of-two capacity");

  void Record(Time when, TraceEvent event, uint64_t arg0 = 0, uint64_t arg1 = 0) {
    // Hot path for every kernel event: bitmask index, no divide.
    ring_[next_ & (kCapacity - 1)] = TraceRecord{when, event, arg0, arg1};
    ++next_;
  }

  // Oldest-to-newest snapshot of the retained events.
  std::vector<TraceRecord> Snapshot() const;

  // Number of events of a given kind still in the ring.
  int Count(TraceEvent event) const;

  uint64_t total_recorded() const { return next_; }

  // Human-readable dump (post-mortem).
  std::string Render(int max_lines = 32) const;

 private:
  std::array<TraceRecord, kCapacity> ring_{};
  uint64_t next_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_TRACE_H_
