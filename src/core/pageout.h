// The virtual memory clock hand (pageout daemon). Paper sections 3.2 and 5.7:
// each cell runs a clock hand that frees pages under memory pressure; Wax
// directs it to preferentially free pages whose memory home is under pressure
// (returning borrowed frames first) -- one of the policies "driven by Wax" in
// table 3.4.
//
// The paper left the eviction policy as future work ("We have not yet
// developed a better policy", section 5.4); this implementation provides the
// standard second-chance scan over reclaimable page-cache entries.

#ifndef HIVE_SRC_CORE_PAGEOUT_H_
#define HIVE_SRC_CORE_PAGEOUT_H_

#include <cstdint>

#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class Cell;

class PageoutDaemon {
 public:
  explicit PageoutDaemon(Cell* cell) : cell_(cell) {}

  // Starts the periodic scan (every kScanPeriod while the cell lives).
  void Start();

  // Cancels the pending scan event. Must be called before the daemon is
  // destroyed (panic, death, reboot) -- the event captures `this`.
  void Stop();

  // One clock-hand pass: if local free memory is below the low-water mark,
  // reclaims up to `max_pages` reclaimable pages. Reclaim order:
  //   1. read-only imports with no references (cheap: just drop the binding),
  //   2. clean local file pages with no references and no exports,
  //   3. dirty local file pages (written back to disk first).
  // Returns the number of frames freed.
  int Scan(Ctx& ctx, int max_pages = 128);

  // Free-frame threshold below which the daemon reclaims.
  static constexpr size_t kLowWaterFrames = 256;
  static constexpr Time kScanPeriod = 250 * kMillisecond;

  uint64_t pages_reclaimed() const { return pages_reclaimed_; }
  uint64_t dirty_writebacks() const { return dirty_writebacks_; }

 private:
  void Tick();

  Cell* cell_;
  uint64_t event_id_ = 0;
  uint64_t pages_reclaimed_ = 0;
  uint64_t dirty_writebacks_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_PAGEOUT_H_
