// Common identifier types for the Hive kernel.

#ifndef HIVE_SRC_CORE_TYPES_H_
#define HIVE_SRC_CORE_TYPES_H_

#include <cstdint>
#include <functional>

#include "src/flash/config.h"

namespace hive {

using flash::kMicrosecond;
using flash::kMillisecond;
using flash::kNanosecond;
using flash::kSecond;
using flash::PhysAddr;
using flash::Pfn;
using flash::Time;

using CellId = int32_t;
constexpr CellId kInvalidCell = -1;

using ProcId = int64_t;
constexpr ProcId kInvalidProc = -1;

using VnodeId = int64_t;
constexpr VnodeId kInvalidVnode = -1;

// File generation number, bumped when a dirty page of the file is lost to
// preemptive discard (paper section 4.2).
using Generation = uint32_t;

// A virtual address within a process address space.
using VirtAddr = uint64_t;

// The logical page id of paper section 5.1: a tag identifying the object the
// page belongs to (a file, or a node in a copy-on-write tree) plus the page
// offset within that object.
struct LogicalPageId {
  enum class Kind : uint8_t { kInvalid = 0, kFile = 1, kAnon = 2 };

  Kind kind = Kind::kInvalid;
  CellId data_home = kInvalidCell;  // Cell that owns the backing store.
  uint64_t object = 0;              // Vnode id or COW node id.
  uint64_t page_offset = 0;         // Page index within the object.

  bool valid() const { return kind != Kind::kInvalid; }

  friend bool operator==(const LogicalPageId& a, const LogicalPageId& b) {
    return a.kind == b.kind && a.data_home == b.data_home && a.object == b.object &&
           a.page_offset == b.page_offset;
  }
};

struct LogicalPageIdHash {
  size_t operator()(const LogicalPageId& id) const {
    uint64_t h = static_cast<uint64_t>(id.kind);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(id.data_home);
    h = h * 0x9E3779B97F4A7C15ull + id.object;
    h = h * 0x9E3779B97F4A7C15ull + id.page_offset;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// Type tags written by the kernel memory allocator into every allocation
// header and removed by the deallocator; the careful reference protocol checks
// them as its first line of defense against invalid remote pointers (paper
// section 4.1, step 4).
enum KernelTypeTag : uint32_t {
  kTagFree = 0xDEADBEEF,
  kTagClockWord = 0x434C4B31,     // "CLK1"
  kTagCowNode = 0x434F5731,       // "COW1"
  kTagAddrMapEntry = 0x414D4531,  // "AME1"
  kTagRpcBuffer = 0x52504331,     // "RPC1"
  kTagGeneric = 0x47454E31,       // "GEN1"
  kTagChainNode = 0x43484E31,     // "CHN1" -- rogue-probe pointer chain node.
  kTagSeqBlock = 0x53514231,      // "SQB1" -- rogue-probe seqlock block.
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_TYPES_H_
