// Firewall management policy (paper section 4.2).
//
// Write access to a page is granted to all processors of a client cell as a
// group, when any process on that cell faults the page into a writable
// portion of its address space; it remains granted as long as any process on
// that cell has the page mapped. This lets the client freely reschedule the
// process on its own CPUs without firewall RPCs, while keeping the number of
// remotely-writable pages small for workloads that share few writable pages.
//
// The manager runs on the page's *memory home* (only local processors can
// change local firewall bits). The data home drives it: directly when the
// frame is local, through kGrantFirewall/kRevokeFirewall RPCs when the frame
// was borrowed (paper section 5.4).
//
// Failure-time sweeps are proportional to the *failed cell's* state, not the
// machine's: a per-client reverse index (pages_by_cell_) lets RevokeAllFor
// walk only the pages granted to the failed cell, matching the paper's claim
// that preemptive discard cost scales with failed-cell state (section 4.2).

#ifndef HIVE_SRC_CORE_FIREWALL_MANAGER_H_
#define HIVE_SRC_CORE_FIREWALL_MANAGER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class Cell;

class FirewallManager {
 public:
  explicit FirewallManager(Cell* cell);

  // Boot: protect a local page so only this cell's processors may write it.
  void ProtectLocal(Pfn pfn);
  // Boot: protect the cell's kernel ranges.
  void ProtectRange(PhysAddr base, uint64_t size);

  // Grants/revokes write access on a *local* page for all processors of
  // `client_cell`, charging the hardware cost. Grant counts are tracked per
  // (page, cell) so overlapping exports revoke correctly.
  base::Status GrantWrite(Ctx& ctx, Pfn pfn, CellId client_cell);
  base::Status RevokeWrite(Ctx& ctx, Pfn pfn, CellId client_cell);

  // Recovery: revoke every grant made to `failed_cell` and report which local
  // pages were writable by it (candidates for preemptive discard). Cost is
  // O(pages granted to the failed cell), via the per-client reverse index;
  // the returned pages are sorted by pfn (deterministic sweep order).
  std::vector<Pfn> RevokeAllFor(Ctx& ctx, CellId failed_cell);

  // Recovery: after barrier 1 no remote mapping is valid anywhere, so every
  // remaining remote grant is revoked; bindings are re-established by fresh
  // faults (paper section 4.3). Returns grants revoked.
  int RevokeAllRemote(Ctx& ctx);

  // Measurement for the section 4.2 experiment: number of local pages
  // currently writable by at least one remote cell.
  int RemotelyWritablePages() const;

  // Invariant auditing: grant bookkeeping snapshots (see invariant_checker.h).
  bool HasGrant(Pfn pfn, CellId client_cell) const;
  std::vector<CellId> GrantedCells(Pfn pfn) const;
  // Union of the CPU masks of every cell granted on `pfn`. Allocation-free:
  // the per-page audit sweep calls this once per local page after every
  // recovery round.
  uint64_t GrantedCpuMask(Pfn pfn) const;

  uint64_t grants() const { return grants_; }
  uint64_t revokes() const { return revokes_; }
  // kSingleWriter ablation: grants that had to evict another cell first.
  uint64_t writer_conflicts() const { return writer_conflicts_; }
  // kGlobalBit ablation: granted pages currently writable by EVERY processor.
  // Maintained as a running set at every vector mutation, so report/oracle
  // calls cost O(1) instead of a scan over every grant.
  int GloballyWritablePages() const {
    return static_cast<int>(globally_writable_pfns_.size());
  }

 private:
  int LocalCpuFor(Pfn pfn) const;
  bool IsAllWritable(Pfn pfn) const;

  // Wraps a firewall vector mutation on `pfn`, keeping the globally-writable
  // set in sync. Membership is decided by the vector's post-mutation state,
  // so pages whose boot-time vector was open but never granted (ProtectLocal
  // at boot) are never counted.
  template <typename Fn>
  void MutateVector(Pfn pfn, Fn&& fn) {
    fn();
    if (IsAllWritable(pfn)) {
      globally_writable_pfns_.insert(pfn);
    } else {
      globally_writable_pfns_.erase(pfn);
    }
  }

  // Reverse-index maintenance for the (page, cell) grant set.
  void IndexGrant(Pfn pfn, CellId client_cell);
  void UnindexGrant(Pfn pfn, CellId client_cell);

  Cell* cell_;
  // Per-page grant counts, sorted by client cell. A page rarely has more
  // than one or two clients, so a flat sorted vector beats a nested hash map
  // (no per-page allocation churn on the fault path) and makes every
  // iteration over a page's clients deterministic by construction.
  using GrantList = std::vector<std::pair<CellId, int>>;
  // pfn -> [(cell, grant count)] sorted by cell.
  std::unordered_map<Pfn, GrantList> grants_by_page_;
  // Reverse index: client cell -> local pages it currently has write grants
  // on. Keeps RevokeAllFor proportional to the failed cell's footprint.
  std::unordered_map<CellId, std::unordered_set<Pfn>> pages_by_cell_;
  uint64_t grants_ = 0;
  uint64_t revokes_ = 0;
  uint64_t writer_conflicts_ = 0;
  // Local pages whose firewall vector currently allows every processor.
  std::unordered_set<Pfn> globally_writable_pfns_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_FIREWALL_MANAGER_H_
