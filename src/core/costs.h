// Kernel path cost model. These constants reproduce the code-path latencies
// the paper measured on the IRIX-derived prototype (tables 5.2 and 7.3,
// sections 4.1 and 6). Every kernel operation charges its components from this
// table so the benchmark harnesses can report the same breakdowns the paper
// does. All values are nanoseconds on the 200 MHz machine model.

#ifndef HIVE_SRC_CORE_COSTS_H_
#define HIVE_SRC_CORE_COSTS_H_

#include "src/flash/config.h"

namespace hive {

// Firewall management policy alternatives discussed in paper section 4.2.
// The paper chose a bit vector per page after rejecting the cheaper options.
enum class FirewallPolicy {
  kBitVector,     // 64-bit vector per page: per-cell write grants (the paper).
  kGlobalBit,     // One bit per page: any grant opens the page to everyone.
  kSingleWriter,  // One writer cell per page: conflicting grants must first
                  // revoke the previous writer (extra RPCs + serialization).
};

struct KernelCosts {
  // --- Careful reference protocol (section 4.1). Total for a one-word remote
  // read: 1.16 us, of which 0.7 us is the remote cache miss.
  // Mirrors LatencyParams::memory_miss_ns; kept here so the cost table is a
  // self-contained calibration of kernel paths.
  flash::Time remote_miss_ns = 700;
  flash::Time careful_on_ns = 200;
  flash::Time careful_check_ns = 100;   // Alignment + range check per access.
  flash::Time careful_copy_ns = 100;    // Copy to local memory, per access.
  flash::Time careful_off_ns = 60;

  // --- RPC subsystem (section 6). Null interrupt-level RPC: 7.2 us end to
  // end, of which 2 us is SIPS latency (two messages). Stub execution raises
  // commonly-used RPCs to ~9.6 us.
  flash::Time rpc_client_stub_ns = 2100;
  flash::Time rpc_dispatch_ns = 1000;      // Interrupt entry + demux on server.
  flash::Time rpc_server_stub_ns = 2100;
  flash::Time rpc_client_spin_poll_ns = 50000;  // Client spins up to 50 us.
  flash::Time rpc_context_switch_ns = 10000;    // Then context-switches.
  // Extra stub work for commonly-used (non-null) requests: +2.4 us total.
  flash::Time rpc_fat_stub_extra_ns = 2400;
  // Arg/result copy through shared memory beyond the 128-byte line, and
  // allocate/free of the argument memory (table 5.2 lines 4-5).
  flash::Time rpc_arg_copy_ns = 4000;
  flash::Time rpc_arg_alloc_ns = 3700;
  // Queued service: initial interrupt-level RPC launches the operation, a
  // completion RPC returns the result; context switch + synchronization
  // dominate. Null queued RPC: 34 us minimum.
  // Includes the hand-off to a server process, context switch +
  // synchronization, and the completion RPC back to the client
  // (34 us total minus the initial 7.2 us interrupt-level RPC).
  flash::Time rpc_queue_service_ns = 26800;

  // --- Page fault path (table 5.2). Local fault that hits in the page cache:
  // 6.9 us. Remote fault that hits in the data home page cache: 50.7 us.
  flash::Time fault_local_ns = 6900;
  // Client cell components (table 5.2: total 28.0 us).
  flash::Time fault_client_fs_ns = 9000;
  flash::Time fault_client_locking_ns = 5500;
  flash::Time fault_client_vm_misc_ns = 8700;
  flash::Time fault_import_ns = 4800;
  // Data home components (table 5.2: total 5.4 us).
  flash::Time fault_home_vm_misc_ns = 3400;
  flash::Time fault_export_ns = 2000;
  // RPC components as measured on the page fault path (table 5.2: total
  // 17.3 us; heavier than the null RPC because of fat stubs and the
  // beyond-one-line argument/result handling).
  flash::Time fault_rpc_stub_ns = 4900;
  flash::Time fault_rpc_hw_ns = 4700;
  flash::Time fault_rpc_copy_ns = 4000;
  flash::Time fault_rpc_alloc_ns = 3700;

  // --- File system operations (table 7.3, warm cache, per the 4 MB
  // microbenchmarks: 1024 pages).
  // 143 us + the 5 us multicellular tax = the 148 us the paper measured
  // on the (Hive) prototype.
  flash::Time open_local_ns = 143000;
  // Remote open: shadow vnode setup + queued RPC + remote directory work.
  flash::Time open_remote_extra_ns = 395600;
  flash::Time file_read_per_page_ns = 63500;    // 65.0 ms / 1024 pages.
  // Remote extras exclude the batched kReadAhead/kWriteBehind RPC cost
  // (charged by the RPC layer, ~3.6 us/page at batch 8); together they land
  // on the paper's 76.2 ms / 87.3 ms for the 4 MB microbenchmarks.
  flash::Time file_read_remote_extra_ns = 6400;
  flash::Time file_write_per_page_ns = 81700;   // 83.7 ms / 1024 pages.
  flash::Time file_write_remote_extra_ns = 2300;
  flash::Time create_local_ns = 200000;
  flash::Time close_ns = 15000;

  // --- Process management.
  flash::Time fork_local_ns = 900000;
  flash::Time fork_remote_extra_ns = 400000;  // Queued RPCs + address space ship.
  flash::Time exit_ns = 300000;
  flash::Time exec_setup_ns = 500000;

  // Ablation: service the page-fault RPC on the queued path even when it
  // could be handled at interrupt level (section 6 structure decision).
  bool force_queued_fault_rpc = false;

  // --- Multicellular bookkeeping tax: extra work on every kernel entry in
  // Hive mode relative to the SMP baseline (shadow structures, cell checks).
  // Produces the ~1% one-cell overhead of table 7.2.
  flash::Time hive_syscall_tax_ns = 5000;

  // --- Failure detection (section 4.3).
  flash::Time clock_tick_period_ns = 10 * flash::kMillisecond;
  int clock_missed_ticks_threshold = 2;
  // The FLASH memory fault model guarantees accesses to failed memory are
  // not stalled indefinitely -- but they do stall until the coherence
  // controller's timeout fires and converts the access into a bus error.
  flash::Time failed_access_stall_ns = 5 * flash::kMillisecond;

  // --- Recovery (section 4.3 / 7.4): per-cell work between barriers.
  flash::Time recovery_tlb_flush_ns = 2 * flash::kMillisecond;
  flash::Time recovery_per_mapping_ns = 2000;
  flash::Time recovery_per_page_scan_ns = 300;
  flash::Time recovery_barrier_round_ns = 500 * flash::kMicrosecond;
  flash::Time recovery_fs_cleanup_ns = 3 * flash::kMillisecond;
  // Salvage (HiveOptions::salvage_pages): recomputing one page's content
  // checksum during the discard walk (DMA read + hash of one frame).
  flash::Time recovery_salvage_check_ns = 3 * flash::kMicrosecond;

  // Derived helpers.
  flash::Time NullRpcNs(const flash::LatencyParams& lat) const {
    // client stub + request SIPS + dispatch + server stub + reply SIPS.
    return rpc_client_stub_ns + (lat.ipi_ns + lat.sips_payload_ns) + rpc_dispatch_ns +
           rpc_server_stub_ns + (lat.ipi_ns + lat.sips_payload_ns);
  }
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_COSTS_H_
