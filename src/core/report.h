// System introspection: renders the live structures of paper figures 3.1 and
// 5.3 (the cell partition, each cell's memory/pfdat/export/import state, and
// process tables) as text. Used by examples and for debugging.

#ifndef HIVE_SRC_CORE_REPORT_H_
#define HIVE_SRC_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace hive {

class HiveSystem;

// One-line-per-cell summary: state, memory, page cache, sharing, processes.
std::string RenderSystemReport(HiveSystem& system);

// Detailed sharing view for one cell: exports, imports, loans, borrows,
// firewall grants (figure 5.3's pfdat bindings).
std::string RenderCellSharing(HiveSystem& system, CellId cell_id);

// Per-cell RPC transport counters: calls, timeouts, retries, suppressed
// duplicates, corruption losses, quarantine activity and at-most-once
// mutation accounting. The health view of the reliable transport layer.
std::string RenderRpcTransport(HiveSystem& system);

// Per-cell failure-detection counters: one column per hint reason (rpc
// timeouts, bus errors, stale/drifting clocks, careful-reference failures,
// invariant mismatches, babbling) plus the traversal-hop high-water mark the
// no-survivor-hang oracle bounds.
std::string RenderFailureDetection(HiveSystem& system);

// Per-cell salvage and reintegration view: pages each survivor adopted
// instead of discarding (split by admitting proof) and every reintegration
// episode's outcome, plus the last recovery's discard/salvage totals.
std::string RenderRecoverySalvage(HiveSystem& system);

// Per-episode recovery log: one row per recovery round (victims, pages
// discarded/salvaged, processes killed, fail-to-resume duration) plus the
// duration distribution (min/p50/p99/max/mean) across all episodes. Empty
// string when no recovery has run.
std::string RenderRecoveryEpisodes(HiveSystem& system);

// One row of the fault-campaign triage table. The campaign layer converts
// its buckets to these plain rows before rendering; core stays
// campaign-agnostic.
struct TriageBucketRow {
  std::string oracle;          // Stable oracle identifier that tripped.
  uint64_t trace_signature = 0;
  uint64_t count = 0;          // Failures bucketed together.
  std::string repro;           // Representative's self-contained repro line.
  std::string minimized;       // Representative's minimized spec, "" if none.
};

// Renders the triage section of a campaign report: one block per bucket with
// oracle, signature, failure count, repro line and minimized form. Empty
// input renders an empty string.
std::string RenderTriageBuckets(const std::vector<TriageBucketRow>& rows);

}  // namespace hive

#endif  // HIVE_SRC_CORE_REPORT_H_
