#include "src/core/firewall_manager.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {

FirewallManager::FirewallManager(Cell* cell) : cell_(cell) {}

int FirewallManager::LocalCpuFor(Pfn pfn) const {
  // Firewall bits can only be changed by a processor on the page's node; a
  // multi-node cell uses whichever of its CPUs lives there.
  const int node = cell_->machine().firewall().NodeOfPfn(pfn);
  return node * cell_->machine().config().cpus_per_node;
}

bool FirewallManager::IsAllWritable(Pfn pfn) const {
  return cell_->machine().firewall().GetVector(pfn) == flash::Firewall::kAllowAll;
}

void FirewallManager::IndexGrant(Pfn pfn, CellId client_cell) {
  pages_by_cell_[client_cell].insert(pfn);
}

void FirewallManager::UnindexGrant(Pfn pfn, CellId client_cell) {
  auto it = pages_by_cell_.find(client_cell);
  if (it != pages_by_cell_.end()) {
    it->second.erase(pfn);
    if (it->second.empty()) {
      pages_by_cell_.erase(it);
    }
  }
}

void FirewallManager::ProtectLocal(Pfn pfn) {
  MutateVector(pfn, [&] {
    cell_->machine().firewall().SetVector(pfn, cell_->CpuMask(), LocalCpuFor(pfn));
  });
}

void FirewallManager::ProtectRange(PhysAddr base, uint64_t size) {
  const uint64_t page_size = cell_->machine().mem().page_size();
  const Pfn first = base / page_size;
  const Pfn last = (base + size - 1) / page_size;
  for (Pfn pfn = first; pfn <= last; ++pfn) {
    ProtectLocal(pfn);
  }
}

base::Status FirewallManager::GrantWrite(Ctx& ctx, Pfn pfn, CellId client_cell) {
  if (client_cell < 0 || client_cell >= cell_->system()->num_cells()) {
    return base::InvalidArgument();
  }
  const PhysAddr addr = cell_->machine().mem().AddrOfPfn(pfn);
  if (!cell_->OwnsAddr(addr)) {
    return base::InvalidArgument();  // Only local pages.
  }
  const FirewallPolicy policy = cell_->system()->options().firewall_policy;
  auto& counts = grants_by_page_[pfn];
  if (policy == FirewallPolicy::kSingleWriter) {
    // Only one remote writer per page: evict any other cell's grant first
    // (RPC + revoke sync), the cost the paper's bit vector avoids.
    for (auto it = counts.begin(); it != counts.end();) {
      if (it->first != client_cell) {
        MutateVector(pfn, [&] {
          cell_->machine().firewall().RevokeCpus(
              pfn, cell_->system()->cell(it->first).CpuMask(), LocalCpuFor(pfn));
        });
        ctx.Charge(cell_->machine().config().latency.firewall_revoke_ns);
        ctx.Charge(cell_->costs().NullRpcNs(cell_->machine().config().latency));
        ++writer_conflicts_;
        UnindexGrant(pfn, it->first);
        it = counts.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto cell_it = std::lower_bound(
      counts.begin(), counts.end(), client_cell,
      [](const auto& entry, CellId c) { return entry.first < c; });
  if (cell_it == counts.end() || cell_it->first != client_cell) {
    cell_it = counts.insert(cell_it, {client_cell, 0});
  }
  if (++cell_it->second == 1) {
    const uint64_t mask = policy == FirewallPolicy::kGlobalBit
                              ? ~0ull  // One bit per page: all or nothing.
                              : cell_->system()->cell(client_cell).CpuMask();
    MutateVector(pfn, [&] {
      cell_->machine().firewall().GrantCpus(pfn, mask, LocalCpuFor(pfn));
    });
    ctx.Charge(cell_->machine().config().latency.firewall_grant_ns);
    ++grants_;
    IndexGrant(pfn, client_cell);
  }
  return base::OkStatus();
}

base::Status FirewallManager::RevokeWrite(Ctx& ctx, Pfn pfn, CellId client_cell) {
  auto page_it = grants_by_page_.find(pfn);
  if (page_it == grants_by_page_.end()) {
    return base::NotFound();
  }
  auto cell_it = std::lower_bound(
      page_it->second.begin(), page_it->second.end(), client_cell,
      [](const auto& entry, CellId c) { return entry.first < c; });
  if (cell_it == page_it->second.end() || cell_it->first != client_cell) {
    return base::NotFound();
  }
  if (--cell_it->second == 0) {
    page_it->second.erase(cell_it);
    MutateVector(pfn, [&] {
      cell_->machine().firewall().RevokeCpus(
          pfn, cell_->system()->cell(client_cell).CpuMask(), LocalCpuFor(pfn));
    });
    // Revocation must wait for pending valid writebacks to drain (section 4.2).
    ctx.Charge(cell_->machine().config().latency.firewall_revoke_ns);
    ++revokes_;
    UnindexGrant(pfn, client_cell);
    if (page_it->second.empty()) {
      grants_by_page_.erase(page_it);
    }
  }
  return base::OkStatus();
}

std::vector<Pfn> FirewallManager::RevokeAllFor(Ctx& ctx, CellId failed_cell) {
  std::vector<Pfn> writable_pages;
  auto index_it = pages_by_cell_.find(failed_cell);
  if (index_it == pages_by_cell_.end()) {
    return writable_pages;
  }
  // Take the failed cell's page set out of the index and sweep it in pfn
  // order: O(pages granted to the failed cell), deterministic regardless of
  // hash layout.
  writable_pages.assign(index_it->second.begin(), index_it->second.end());
  std::sort(writable_pages.begin(), writable_pages.end());
  pages_by_cell_.erase(index_it);
  for (const Pfn pfn : writable_pages) {
    auto page_it = grants_by_page_.find(pfn);
    CHECK(page_it != grants_by_page_.end()) << "reverse index names an ungranted page";
    auto cell_it = std::lower_bound(
        page_it->second.begin(), page_it->second.end(), failed_cell,
        [](const auto& entry, CellId c) { return entry.first < c; });
    CHECK(cell_it != page_it->second.end() && cell_it->first == failed_cell)
        << "reverse index disagrees with grant table";
    page_it->second.erase(cell_it);
    MutateVector(pfn, [&] {
      cell_->machine().firewall().RevokeCpus(
          pfn, cell_->system()->cell(failed_cell).CpuMask(), LocalCpuFor(pfn));
    });
    ctx.Charge(cell_->machine().config().latency.firewall_revoke_ns);
    ++revokes_;
    if (page_it->second.empty()) {
      grants_by_page_.erase(page_it);
    }
  }
  return writable_pages;
}

int FirewallManager::RevokeAllRemote(Ctx& ctx) {
  int revoked = 0;
  // Snapshot the grant set into (pfn, client) pairs and revoke in sorted
  // order: the hash maps' iteration order must not leak into the mutation
  // sequence (determinism purity, lint R10).
  std::vector<std::pair<Pfn, CellId>> grants;
  // hive-lint: allow(R10): collection loop only; the pairs are sorted below before any side effect.
  for (auto& [pfn, cells] : grants_by_page_) {
    for (auto& [client, count] : cells) {
      (void)count;
      grants.emplace_back(pfn, client);
    }
  }
  std::sort(grants.begin(), grants.end());
  for (const auto& [pfn, client] : grants) {
    MutateVector(pfn, [&, page = pfn, target = client] {
      cell_->machine().firewall().RevokeCpus(
          page, cell_->system()->cell(target).CpuMask(), LocalCpuFor(page));
    });
    ctx.Charge(cell_->machine().config().latency.firewall_revoke_ns);
    ++revokes_;
    ++revoked;
  }
  grants_by_page_.clear();
  pages_by_cell_.clear();
  return revoked;
}

bool FirewallManager::HasGrant(Pfn pfn, CellId client_cell) const {
  auto page_it = grants_by_page_.find(pfn);
  if (page_it == grants_by_page_.end()) {
    return false;
  }
  auto cell_it = std::lower_bound(
      page_it->second.begin(), page_it->second.end(), client_cell,
      [](const auto& entry, CellId c) { return entry.first < c; });
  return cell_it != page_it->second.end() && cell_it->first == client_cell &&
         cell_it->second > 0;
}

std::vector<CellId> FirewallManager::GrantedCells(Pfn pfn) const {
  std::vector<CellId> cells;
  auto page_it = grants_by_page_.find(pfn);
  if (page_it != grants_by_page_.end()) {
    for (const auto& [client, count] : page_it->second) {
      if (count > 0) {
        cells.push_back(client);
      }
    }
  }
  return cells;
}

uint64_t FirewallManager::GrantedCpuMask(Pfn pfn) const {
  uint64_t mask = 0;
  auto page_it = grants_by_page_.find(pfn);
  if (page_it != grants_by_page_.end()) {
    for (const auto& [client, count] : page_it->second) {
      if (count > 0) {
        mask |= cell_->system()->cell(client).CpuMask();
      }
    }
  }
  return mask;
}

int FirewallManager::RemotelyWritablePages() const {
  return static_cast<int>(grants_by_page_.size());
}

}  // namespace hive
