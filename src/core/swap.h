// The swap partition: backing store for anonymous pages (paper section 5.3:
// "anonymous pages (those whose backing store is in the swap partition)").
//
// Each cell owns a swap area on its local disk. The pageout daemon swaps out
// unreferenced anonymous pages under memory pressure; the anonymous fault
// path swaps them back in on demand. The data home of an anonymous page
// never changes: pages always swap to the disk of the COW node's owner cell,
// so the kCowBind export path works unchanged after a swap-in.

#ifndef HIVE_SRC_CORE_SWAP_H_
#define HIVE_SRC_CORE_SWAP_H_

#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/pfdat.h"
#include "src/core/types.h"

namespace hive {

class Cell;

class SwapArea {
 public:
  explicit SwapArea(Cell* cell) : cell_(cell) {}

  // Writes the page out to the local swap disk and releases its frame. The
  // pfdat must be an unreferenced, unexported local anonymous page.
  base::Status SwapOut(Ctx& ctx, Pfdat* pfdat);

  // True if the logical page currently lives in swap.
  bool Contains(const LogicalPageId& lpid) const;

  // Reads the page back into a fresh frame and reinserts it into the page
  // cache. Returns the new pfdat with one reference.
  base::Result<Pfdat*> SwapIn(Ctx& ctx, const LogicalPageId& lpid);

  // Process teardown: drop the swap slots of a COW node's pages.
  void DropNode(uint64_t node_id);

  uint64_t swap_outs() const { return swap_outs_; }
  uint64_t swap_ins() const { return swap_ins_; }
  size_t slots_in_use() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t disk_offset = 0;
    std::vector<uint8_t> bytes;  // The "swap disk" contents for this slot.
  };

  Cell* cell_;
  std::unordered_map<LogicalPageId, Slot, LogicalPageIdHash> slots_;
  uint64_t next_disk_offset_ = 0;
  uint64_t swap_outs_ = 0;
  uint64_t swap_ins_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_SWAP_H_
