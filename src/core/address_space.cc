#include "src/core/address_space.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"

namespace hive {
namespace {

constexpr Time kRegionWalkStepNs = 300;
constexpr Time kMapEntryAllocNs = 1500;

}  // namespace

base::Status AddressSpace::AppendEntry(Ctx& ctx, const Region& region) {
  ctx.Charge(kMapEntryAllocNs);
  KernelHeap& heap = cell_->heap();
  ASSIGN_OR_RETURN(const PhysAddr entry,
                   heap.Alloc(kTagAddrMapEntry, AddrMapEntryLayout::kEntryBytes));
  heap.Write<uint64_t>(entry + AddrMapEntryLayout::kVaStart, region.va_start);
  heap.Write<uint64_t>(entry + AddrMapEntryLayout::kLength, region.length);
  heap.Write<uint32_t>(entry + AddrMapEntryLayout::kKind,
                       region.is_file ? AddrMapEntryLayout::kKindFile
                                      : AddrMapEntryLayout::kKindAnon);
  heap.Write<uint32_t>(entry + AddrMapEntryLayout::kWritable, region.writable ? 1 : 0);
  heap.Write<uint64_t>(entry + AddrMapEntryLayout::kObject,
                       static_cast<uint64_t>(region.vnode));
  heap.Write<uint32_t>(entry + AddrMapEntryLayout::kDataHome,
                       static_cast<uint32_t>(region.data_home));
  heap.Write<uint32_t>(entry + AddrMapEntryLayout::kGeneration, region.generation);
  heap.Write<uint64_t>(entry + AddrMapEntryLayout::kFileOffset, region.file_page_offset);
  heap.Write<uint64_t>(entry + AddrMapEntryLayout::kNext, 0);

  if (head_ == 0) {
    head_ = entry;
  } else {
    heap.Write<uint64_t>(tail_ + AddrMapEntryLayout::kNext, entry);
  }
  tail_ = entry;
  return base::OkStatus();
}

base::Status AddressSpace::MapFile(Ctx& ctx, VirtAddr va, uint64_t length,
                                   const FileHandle& handle, bool writable,
                                   uint64_t file_page_offset) {
  Region region;
  region.va_start = va;
  region.length = length;
  region.is_file = true;
  region.writable = writable;
  region.vnode = handle.vnode;
  region.data_home = handle.data_home;
  region.generation = handle.generation;
  region.file_page_offset = file_page_offset;
  return AppendEntry(ctx, region);
}

base::Status AddressSpace::MapAnon(Ctx& ctx, VirtAddr va, uint64_t length, bool writable) {
  Region region;
  region.va_start = va;
  region.length = length;
  region.is_file = false;
  region.writable = writable;
  region.data_home = cell_->id();
  return AppendEntry(ctx, region);
}

base::Result<Region> AddressSpace::FindRegion(Ctx& ctx, VirtAddr va) {
  KernelHeap& heap = cell_->heap();
  PhysAddr entry = head_;
  // The list is bounded; a longer walk means a corrupt next pointer loop.
  for (int steps = 0; steps < 4096 && entry != 0; ++steps) {
    ctx.Charge(kRegionWalkStepNs);
    // The kernel trusts its own memory only as far as the allocator tags; a
    // mismatch means internal corruption and the cell panics (section 4.1
    // discusses panics on internal errors).
    if (entry % 8 != 0 || !heap.Contains(entry) ||
        heap.ReadTypeTag(ctx.cpu, entry) != static_cast<uint32_t>(kTagAddrMapEntry)) {
      cell_->Panic("corrupt process address map entry");
      return base::Internal();
    }
    const uint64_t start = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kVaStart);
    const uint64_t length = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kLength);
    if (va >= start && va - start < length) {
      Region region;
      region.entry_addr = entry;
      region.va_start = start;
      region.length = length;
      region.is_file = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kKind) ==
                       AddrMapEntryLayout::kKindFile;
      region.writable = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kWritable) != 0;
      region.vnode =
          static_cast<VnodeId>(heap.Read<uint64_t>(entry + AddrMapEntryLayout::kObject));
      region.data_home =
          static_cast<CellId>(heap.Read<uint32_t>(entry + AddrMapEntryLayout::kDataHome));
      region.generation = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kGeneration);
      region.file_page_offset = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kFileOffset);
      // Final sanity check on decoded values.
      if (region.is_file &&
          (region.data_home < 0 || region.data_home >= cell_->system()->num_cells())) {
        cell_->Panic("corrupt data home in address map entry");
        return base::Internal();
      }
      return region;
    }
    entry = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kNext);
  }
  if (entry != 0) {
    cell_->Panic("address map list does not terminate");
    return base::Internal();
  }
  return base::NotFound();
}

std::vector<Region> AddressSpace::ListRegions(Ctx& ctx) {
  std::vector<Region> regions;
  KernelHeap& heap = cell_->heap();
  PhysAddr entry = head_;
  for (int steps = 0; steps < 4096 && entry != 0; ++steps) {
    ctx.Charge(kRegionWalkStepNs);
    if (entry % 8 != 0 || !heap.Contains(entry) ||
        heap.ReadTypeTag(ctx.cpu, entry) != static_cast<uint32_t>(kTagAddrMapEntry)) {
      cell_->Panic("corrupt process address map entry during enumeration");
      return regions;
    }
    Region region;
    region.entry_addr = entry;
    region.va_start = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kVaStart);
    region.length = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kLength);
    region.is_file = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kKind) ==
                     AddrMapEntryLayout::kKindFile;
    region.writable = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kWritable) != 0;
    region.vnode =
        static_cast<VnodeId>(heap.Read<uint64_t>(entry + AddrMapEntryLayout::kObject));
    region.data_home =
        static_cast<CellId>(heap.Read<uint32_t>(entry + AddrMapEntryLayout::kDataHome));
    region.generation = heap.Read<uint32_t>(entry + AddrMapEntryLayout::kGeneration);
    region.file_page_offset = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kFileOffset);
    regions.push_back(region);
    entry = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kNext);
  }
  return regions;
}

Mapping* AddressSpace::FindMapping(VirtAddr va_page) {
  auto it = mappings_.find(va_page);
  return it == mappings_.end() ? nullptr : &it->second;
}

void AddressSpace::InstallMapping(VirtAddr va_page, Pfdat* pfdat, bool writable) {
  mappings_[va_page] = Mapping{pfdat, writable};
}

void AddressSpace::RemoveMapping(VirtAddr va_page) { mappings_.erase(va_page); }

int AddressSpace::FlushMappings(Ctx& ctx, bool remote_only) {
  int removed = 0;
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    Pfdat* pfdat = it->second.pfdat;
    const bool remote = pfdat->extended;
    if (remote_only && !remote) {
      ++it;
      continue;
    }
    cell_->fs().ReleasePage(ctx, pfdat);
    if (pfdat->imported_from != kInvalidCell && pfdat->import_writable &&
        pfdat->refcount == 0) {
      // Last mapping of a writable import on this cell: give it back so the
      // data home can close the firewall (section 4.2 policy). Read-only
      // imports stay cached for fast re-faults.
      cell_->fs().DropImport(ctx, pfdat);
    }
    ctx.Charge(cell_->costs().recovery_per_mapping_ns);
    it = mappings_.erase(it);
    ++removed;
  }
  return removed;
}

base::Status AddressSpace::CopyFrom(Ctx& ctx, Ctx& parent_ctx, AddressSpace& parent) {
  for (const Region& region : parent.ListRegions(parent_ctx)) {
    RETURN_IF_ERROR(AppendEntry(ctx, region));
  }
  return base::OkStatus();
}

void AddressSpace::Teardown(Ctx& ctx) {
  FlushMappings(ctx, /*remote_only=*/false);
  KernelHeap& heap = cell_->heap();
  PhysAddr entry = head_;
  for (int steps = 0; steps < 4096 && entry != 0; ++steps) {
    if (!heap.Contains(entry) ||
        heap.ReadTypeTag(ctx.cpu, entry) != static_cast<uint32_t>(kTagAddrMapEntry)) {
      // Teardown of a corrupt map: stop walking; the heap space leaks, which
      // is acceptable for a process being destroyed on a panicking path.
      break;
    }
    const PhysAddr next = heap.Read<uint64_t>(entry + AddrMapEntryLayout::kNext);
    heap.Free(entry);
    entry = next;
  }
  head_ = tail_ = 0;
}

}  // namespace hive
