#include "src/core/report.h"

#include <sstream>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/table.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/core/pageout.h"
#include "src/core/recovery.h"
#include "src/core/swap.h"

namespace hive {
namespace {

const char* StateName(CellState state) {
  switch (state) {
    case CellState::kBooting:
      return "BOOTING";
    case CellState::kRunning:
      return "RUNNING";
    case CellState::kPanicked:
      return "PANICKED";
    case CellState::kDead:
      return "DEAD";
    case CellState::kRebooting:
      return "REBOOTING";
  }
  return "?";
}

struct SharingCounts {
  int exported = 0;
  int exported_writable = 0;
  int imported = 0;
  int borrowed = 0;
  int loaned = 0;
  int cached = 0;
};

SharingCounts CountSharing(Cell& cell) {
  SharingCounts counts;
  cell.pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->HasLogicalBinding()) {
      ++counts.cached;
    }
    if (pfdat->exported_to != 0) {
      ++counts.exported;
    }
    if (pfdat->exported_writable != 0) {
      ++counts.exported_writable;
    }
    if (pfdat->imported_from != kInvalidCell) {
      ++counts.imported;
    }
    if (pfdat->borrowed_from != kInvalidCell) {
      ++counts.borrowed;
    }
    if (pfdat->loaned_out) {
      ++counts.loaned;
    }
  });
  return counts;
}

}  // namespace

std::string RenderSystemReport(HiveSystem& system) {
  base::Table table({"Cell", "State", "Nodes", "Free frames", "Cached pages", "Exports",
                     "Imports", "Loans/Borrows", "Writable-by-remote", "Procs (live/total)",
                     "Swap slots"});
  for (CellId c = 0; c < system.num_cells(); ++c) {
    Cell& cell = system.cell(c);
    if (!cell.alive()) {
      table.AddRow({"cell " + base::Table::I64(c), StateName(cell.state()),
                    base::Table::I64(cell.first_node()) + "-" +
                        base::Table::I64(cell.first_node() + cell.num_nodes() - 1),
                    "-", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const SharingCounts counts = CountSharing(cell);
    int live_procs = 0;
    int total_procs = 0;
    for (Process* proc : cell.sched().AllProcesses()) {
      ++total_procs;
      live_procs += proc->finished() ? 0 : 1;
    }
    table.AddRow(
        {"cell " + base::Table::I64(c), StateName(cell.state()),
         base::Table::I64(cell.first_node()) + "-" +
             base::Table::I64(cell.first_node() + cell.num_nodes() - 1),
         base::Table::I64(static_cast<int64_t>(cell.allocator().free_frames())),
         base::Table::I64(counts.cached), base::Table::I64(counts.exported),
         base::Table::I64(counts.imported),
         base::Table::I64(counts.loaned) + "/" + base::Table::I64(counts.borrowed),
         base::Table::I64(cell.firewall_manager().RemotelyWritablePages()),
         base::Table::I64(live_procs) + "/" + base::Table::I64(total_procs),
         base::Table::I64(static_cast<int64_t>(cell.swap().slots_in_use()))});
  }
  std::ostringstream out;
  out << table.Render("Hive system state (t=" +
                      base::Table::F64(static_cast<double>(system.machine().Now()) / 1e9, 3) +
                      " s)");
  return out.str();
}

std::string RenderRpcTransport(HiveSystem& system) {
  base::Table table({"Cell", "Calls", "Queued", "Timeouts", "Retries", "Dups-suppr",
                     "Corrupt-lost", "Quarantines", "Fail-fast", "Acked-mut",
                     "Exec-mut", "AMO-viol"});
  for (CellId c = 0; c < system.num_cells(); ++c) {
    Cell& cell = system.cell(c);
    const RpcCallStats& stats = cell.rpc().stats();
    table.AddRow({"cell " + base::Table::I64(c),
                  base::Table::I64(static_cast<int64_t>(stats.calls)),
                  base::Table::I64(static_cast<int64_t>(stats.queued_calls)),
                  base::Table::I64(static_cast<int64_t>(stats.timeouts)),
                  base::Table::I64(static_cast<int64_t>(stats.retries)),
                  base::Table::I64(static_cast<int64_t>(stats.duplicates_suppressed)),
                  base::Table::I64(static_cast<int64_t>(stats.corrupt_lost)),
                  base::Table::I64(static_cast<int64_t>(stats.quarantines_entered)),
                  base::Table::I64(static_cast<int64_t>(stats.quarantine_fail_fast)),
                  base::Table::I64(static_cast<int64_t>(stats.acked_mutations)),
                  base::Table::I64(static_cast<int64_t>(stats.executed_mutations)),
                  base::Table::I64(static_cast<int64_t>(stats.at_most_once_violations))});
  }
  return table.Render("RPC transport (per cell)");
}

std::string RenderFailureDetection(HiveSystem& system) {
  std::vector<std::string> header = {"Cell", "Hints"};
  for (HintReason reason : kAllHintReasons) {
    header.push_back(HintReasonName(reason));
  }
  header.push_back("Max-hops");
  base::Table table(header);
  for (CellId c = 0; c < system.num_cells(); ++c) {
    FailureDetector& detector = system.cell(c).detector();
    std::vector<std::string> row = {
        "cell " + base::Table::I64(c),
        base::Table::I64(static_cast<int64_t>(detector.hints_raised()))};
    for (HintReason reason : kAllHintReasons) {
      row.push_back(base::Table::I64(static_cast<int64_t>(detector.hints_for(reason))));
    }
    row.push_back(base::Table::I64(detector.max_traversal_hops()));
    table.AddRow(row);
  }
  return table.Render("Failure detection (per cell, hints by reason)");
}

std::string RenderRecoverySalvage(HiveSystem& system) {
  const RecoveryManager& recovery = system.recovery();
  base::Table table({"Cell", "Frames-adopted", "Salvages", "Firewall-proof",
                     "Checksum-proof", "Reint-started", "Reint-done", "Re-excised",
                     "Reint-failed"});
  for (CellId c = 0; c < system.num_cells(); ++c) {
    int64_t salvages = 0;
    int64_t firewall_proof = 0;
    int64_t checksum_proof = 0;
    for (const SalvageRecord& record : recovery.salvage_log()) {
      if (record.owner != c) {
        continue;
      }
      ++salvages;
      firewall_proof += record.firewall_proof ? 1 : 0;
      checksum_proof += record.checksum_proof ? 1 : 0;
    }
    int64_t started = 0;
    int64_t done = 0;
    int64_t re_excised = 0;
    int64_t failed = 0;
    for (const ReintegrationRecord& record : recovery.reintegration_log()) {
      if (record.cell != c) {
        continue;
      }
      ++started;
      done += record.done_at != 0 ? 1 : 0;
      re_excised += record.re_excised ? 1 : 0;
      failed += record.failed ? 1 : 0;
    }
    table.AddRow({"cell " + base::Table::I64(c),
                  base::Table::I64(static_cast<int64_t>(
                      system.cell(c).allocator().frames_salvaged())),
                  base::Table::I64(salvages), base::Table::I64(firewall_proof),
                  base::Table::I64(checksum_proof), base::Table::I64(started),
                  base::Table::I64(done), base::Table::I64(re_excised),
                  base::Table::I64(failed)});
  }
  const RecoveryStats& stats = recovery.last_stats();
  std::ostringstream out;
  out << table.Render("Salvage & reintegration (per cell)");
  out << "last recovery: " << stats.pages_salvaged << " page(s) salvaged, "
      << stats.pages_discarded << " discarded, " << stats.dirty_pages_lost
      << " dirty lost; " << recovery.recoveries_run() << " recovery run(s)\n";
  return out.str();
}

std::string RenderRecoveryEpisodes(HiveSystem& system) {
  const std::vector<RecoveryStats>& episodes = system.recovery().episodes();
  if (episodes.empty()) {
    return "";
  }
  base::Table table({"Episode", "t-detect (ms)", "Victims", "Pages-disc",
                     "Pages-salv", "Dirty-lost", "Procs-killed", "Duration (ms)"});
  base::Histogram durations;
  for (size_t i = 0; i < episodes.size(); ++i) {
    const RecoveryStats& ep = episodes[i];
    durations.Record(static_cast<int64_t>(ep.duration_ns));
    std::string victims;
    for (CellId c : ep.failed_cells) {
      victims += (victims.empty() ? "" : ",") + base::Table::I64(c);
    }
    table.AddRow({base::Table::I64(static_cast<int64_t>(i)),
                  base::Table::F64(static_cast<double>(ep.detect_time) / 1e6, 3),
                  victims, base::Table::I64(ep.pages_discarded),
                  base::Table::I64(ep.pages_salvaged),
                  base::Table::I64(ep.dirty_pages_lost),
                  base::Table::I64(ep.processes_killed),
                  base::Table::F64(static_cast<double>(ep.duration_ns) / 1e6, 3)});
  }
  std::ostringstream out;
  out << table.Render("Recovery episodes");
  out << "recovery duration (ms): count=" << durations.count()
      << " min=" << base::Table::F64(static_cast<double>(durations.min()) / 1e6, 3)
      << " p50=" << base::Table::F64(static_cast<double>(durations.Percentile(50)) / 1e6, 3)
      << " p99=" << base::Table::F64(static_cast<double>(durations.Percentile(99)) / 1e6, 3)
      << " max=" << base::Table::F64(static_cast<double>(durations.max()) / 1e6, 3)
      << " mean=" << base::Table::F64(durations.mean() / 1e6, 3) << "\n";
  return out.str();
}

std::string RenderCellSharing(HiveSystem& system, CellId cell_id) {
  Cell& cell = system.cell(cell_id);
  std::ostringstream out;
  out << "cell " << cell_id << " sharing state:\n";
  if (!cell.alive()) {
    out << "  (cell is " << StateName(cell.state()) << ")\n";
    return out.str();
  }
  int lines = 0;
  cell.pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->exported_to == 0 && pfdat->imported_from == kInvalidCell &&
        pfdat->borrowed_from == kInvalidCell && !pfdat->loaned_out) {
      return;
    }
    if (++lines > 40) {
      return;  // Cap the dump.
    }
    out << "  frame 0x" << std::hex << pfdat->frame << std::dec;
    if (pfdat->HasLogicalBinding()) {
      out << " ["
          << (pfdat->lpid.kind == LogicalPageId::Kind::kFile ? "file " : "anon ")
          << pfdat->lpid.object << " page " << pfdat->lpid.page_offset << "]";
    }
    if (pfdat->exported_to != 0) {
      out << " exported-to=0x" << std::hex << pfdat->exported_to << std::dec;
      if (pfdat->exported_writable != 0) {
        out << " (writable 0x" << std::hex << pfdat->exported_writable << std::dec << ")";
      }
    }
    if (pfdat->imported_from != kInvalidCell) {
      out << " imported-from=" << pfdat->imported_from
          << (pfdat->import_writable ? " (writable)" : "");
    }
    if (pfdat->borrowed_from != kInvalidCell) {
      out << " borrowed-from=" << pfdat->borrowed_from;
    }
    if (pfdat->loaned_out) {
      out << " loaned-to=" << pfdat->loaned_to;
    }
    out << "\n";
  });
  if (lines == 0) {
    out << "  (no intercell sharing)\n";
  } else if (lines > 40) {
    out << "  ... " << (lines - 40) << " more\n";
  }
  return out.str();
}

std::string RenderTriageBuckets(const std::vector<TriageBucketRow>& rows) {
  if (rows.empty()) {
    return "";
  }
  std::ostringstream out;
  out << "triage: " << rows.size() << " bucket(s)\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const TriageBucketRow& row = rows[i];
    out << "  bucket " << (i + 1) << ": " << row.oracle << " x" << row.count
        << " trace-sig=0x" << std::hex << row.trace_signature << std::dec << "\n";
    out << "    repro: " << row.repro << "\n";
    if (!row.minimized.empty()) {
      out << "    minimized: " << row.minimized << "\n";
    }
  }
  return out.str();
}

}  // namespace hive
