// Per-cell kernel memory allocator backed by the cell's *simulated* physical
// memory. Kernel structures that other cells read directly (clock words, COW
// tree nodes, address map entries) are allocated here, so that fault-injected
// corruption mutates real bytes and the careful reference protocol has real
// type tags to check.
//
// Every allocation carries a header whose type tag is written by the
// allocator and destroyed by the deallocator (paper section 4.1 step 4).

#ifndef HIVE_SRC_CORE_KERNEL_HEAP_H_
#define HIVE_SRC_CORE_KERNEL_HEAP_H_

#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/core/types.h"
#include "src/flash/phys_mem.h"

namespace hive {

class KernelHeap {
 public:
  // Manages [base, base+size) of physical memory; `owner_cpu` is the CPU the
  // heap's stores are attributed to (must have firewall write permission,
  // i.e. a CPU of the owning cell).
  KernelHeap(flash::PhysMem* mem, int owner_cpu, PhysAddr base, uint64_t size);

  // Allocates `size` payload bytes tagged `type_tag`; returns the payload
  // address (header lives just below it).
  base::Result<PhysAddr> Alloc(uint32_t type_tag, uint64_t size);

  // Frees a payload address returned by Alloc. Overwrites the type tag with
  // kTagFree so stale remote pointers are detectable.
  void Free(PhysAddr payload);

  // Reads the type tag of an allocation as `reader_cpu` through the normal
  // checked path (may throw BusError like any remote read).
  uint32_t ReadTypeTag(int reader_cpu, PhysAddr payload) const;
  uint64_t ReadAllocSize(int reader_cpu, PhysAddr payload) const;

  // Typed helpers routed through the checked store path as the owner CPU.
  template <typename T>
  void Write(PhysAddr addr, const T& value) {
    mem_->WriteValue<T>(owner_cpu_, addr, value);
  }
  template <typename T>
  T Read(PhysAddr addr) const {
    return mem_->ReadValue<T>(owner_cpu_, addr);
  }

  PhysAddr base() const { return base_; }
  uint64_t size() const { return size_; }
  bool Contains(PhysAddr addr) const { return addr >= base_ && addr < base_ + size_; }

  uint64_t bytes_in_use() const { return bytes_in_use_; }
  uint64_t allocations() const { return allocations_; }

  static constexpr uint64_t kHeaderSize = 16;  // {u32 magic, u32 tag, u64 size}.
  static constexpr uint32_t kHeaderMagic = 0x48564850;  // "HVHP"

 private:
  flash::PhysMem* mem_;
  int owner_cpu_;
  PhysAddr base_;
  uint64_t size_;
  PhysAddr bump_;  // Next never-allocated address.
  std::map<uint64_t, std::vector<PhysAddr>> free_lists_;  // size -> payloads.
  uint64_t bytes_in_use_ = 0;
  uint64_t allocations_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_KERNEL_HEAP_H_
