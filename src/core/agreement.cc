#include "src/core/agreement.h"

#include "src/base/log.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/core/rpc.h"

namespace hive {
namespace {

// Cost of one oracle consultation (the paper's experiments used an oracle
// whose cost the machine model exposes "unambiguously", section 7.2).
constexpr Time kOracleRoundNs = 50 * kMicrosecond;
// Coordination messages for a voting round (collect + decide broadcasts).
constexpr Time kVoteCoordinationNs = 40 * kMicrosecond;
// A voter that does not deliver its vote within this budget is counted as a
// timeout: a mute live cell cannot stall confirmation indefinitely.
constexpr Time kVoteTimeoutNs = 200 * kMicrosecond;
// Bounded work for evidence corroboration walks.
constexpr int kProbeChainMaxHops = 16;
constexpr int kProbeSeqMaxRetries = 3;

// kVoteCast arg1 encoding (see trace.h).
constexpr uint64_t kVoteAgainst = 0;
constexpr uint64_t kVoteFor = 1;
constexpr uint64_t kVoteTimedOut = 2;

uint64_t StrikeKey(CellId accuser, CellId suspect) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(accuser)) << 32) |
         static_cast<uint32_t>(suspect);
}

}  // namespace

bool Agreement::ProbeSuspect(Ctx& ctx, CellId prober, CellId suspect) {
  Cell& prober_cell = system_->cell(prober);
  Cell& suspect_cell = system_->cell(suspect);

  // Probe 1: careful read of the suspect's clock word. A bus error or a bad
  // tag is a strong failure signal.
  Ctx probe_ctx;
  probe_ctx.cell = &prober_cell;
  probe_ctx.cpu = prober_cell.FirstCpu();
  probe_ctx.start = ctx.VirtualNow();
  {
    CarefulRef careful(&probe_ctx, &prober_cell.machine().mem(), prober_cell.costs(),
                       suspect, suspect_cell.mem_base(), suspect_cell.mem_size());
    auto read =
        careful.ReadTagged<uint64_t>(suspect_cell.clock_word_addr(), kTagClockWord);
    if (!read.ok()) {
      ctx.Charge(probe_ctx.elapsed);
      return true;  // Unreachable or corrupt: vote failed.
    }
  }

  // Probe 2: ping RPC; a live kernel answers at interrupt level.
  RpcArgs args;
  RpcReply reply;
  base::Status status =
      prober_cell.rpc().Call(probe_ctx, suspect, MsgType::kPing, args, &reply);
  ctx.Charge(probe_ctx.elapsed);
  return !status.ok();
}

AgreementResult Agreement::RunRound(Ctx& ctx, CellId accuser, CellId suspect,
                                    HintReason reason) {
  (void)reason;
  ++rounds_run_;
  AgreementResult result;
  const Time round_start = ctx.elapsed;

  // Evidence the accuser attached to this hint (invalid if none): voters
  // corroborate it independently rather than trusting the accusation.
  const HintEvidence& evidence =
      system_->cell(accuser).detector().EvidenceAgainst(suspect);

  if (mode_ == AgreementMode::kOracle) {
    ctx.Charge(kOracleRoundNs);
    Cell& cell = system_->cell(suspect);
    bool failed = !cell.alive() || cell.rogue_active();
    for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes();
         ++node) {
      failed = failed || system_->machine().NodeDead(node);
    }
    result.confirmed = failed;
    if (failed) {
      result.failed.push_back(suspect);
    }
  } else {
    // Voting: every live cell other than the suspect probes independently.
    ctx.Charge(kVoteCoordinationNs);
    int votes_for = 0;
    int votes_against = 0;
    for (CellId prober : system_->LiveCells()) {
      if (prober == suspect) {
        continue;
      }
      Cell& prober_cell = system_->cell(prober);
      if (prober_cell.rogue().rpc_silent) {
        // A mute live voter never delivers its vote: after the per-vote
        // timeout the round proceeds without it instead of stalling.
        ctx.Charge(kVoteTimeoutNs);
        ++vote_timeouts_;
        prober_cell.Trace(TraceEvent::kVoteCast, static_cast<uint64_t>(suspect),
                          kVoteTimedOut);
        continue;
      }
      bool thinks_failed = evidence.valid
                               ? CorroborateEvidence(ctx, prober, suspect, evidence)
                               : ProbeSuspect(ctx, prober, suspect);
      if (prober_cell.rogue().vote_contrarian) {
        // Byzantine voter: reports the opposite of its own observation.
        thinks_failed = !thinks_failed;
      }
      if (thinks_failed) {
        ++votes_for;
      } else {
        ++votes_against;
      }
      prober_cell.Trace(TraceEvent::kVoteCast, static_cast<uint64_t>(suspect),
                        thinks_failed ? kVoteFor : kVoteAgainst);
    }
    result.votes_for = votes_for;
    result.votes_against = votes_against;
    result.confirmed = votes_for > votes_against;
    if (result.confirmed) {
      result.failed.push_back(suspect);
    }
  }

  if (!result.confirmed) {
    // The accuser cried wolf. Twice for the same suspect and the other cells
    // conclude the *accuser* is corrupt (paper section 4.3).
    ++false_alerts_;
    const uint64_t key = StrikeKey(accuser, suspect);
    if (++strikes_[key] >= 2) {
      strikes_.erase(key);
      result.confirmed = true;
      result.failed.push_back(accuser);
      LOG(kInfo) << "cell " << accuser << " voted down twice accusing " << suspect
                 << ": declared corrupt";
    }
  }

  // The accuser's evidence is single-use: clear it so a later hint without
  // evidence cannot ride on a stale observation.
  system_->cell(accuser).detector().ClearEvidence(suspect);

  result.round_cost_ns = ctx.elapsed - round_start;
  if (result.round_cost_ns > max_round_cost_ns_) {
    max_round_cost_ns_ = result.round_cost_ns;
  }
  return result;
}

bool Agreement::CorroborateEvidence(Ctx& ctx, CellId prober, CellId suspect,
                                    const HintEvidence& evidence) {
  Cell& prober_cell = system_->cell(prober);
  Cell& suspect_cell = system_->cell(suspect);

  Ctx probe_ctx;
  probe_ctx.cell = &prober_cell;
  probe_ctx.cpu = prober_cell.FirstCpu();
  probe_ctx.start = ctx.VirtualNow();

  bool corroborated = false;
  switch (evidence.reason) {
    case HintReason::kClockStale: {
      // Re-read the suspect's clock word: still pinned at the value the
      // accuser saw (or unreadable) corroborates the freeze.
      CarefulRef careful(&probe_ctx, &prober_cell.machine().mem(), prober_cell.costs(),
                         suspect, suspect_cell.mem_base(), suspect_cell.mem_size());
      auto read =
          careful.ReadTagged<uint64_t>(suspect_cell.clock_word_addr(), kTagClockWord);
      corroborated = !read.ok() || *read == evidence.clock_value;
      break;
    }
    case HintReason::kClockDrift: {
      // The accuser claims the clock advanced `< 3/4` of the expected rate
      // over `ticks_observed` ticks starting from `clock_value`. A healthy
      // suspect has advanced well past that window by now; a drifting one is
      // still behind the 3/4 line.
      CarefulRef careful(&probe_ctx, &prober_cell.machine().mem(), prober_cell.costs(),
                         suspect, suspect_cell.mem_base(), suspect_cell.mem_size());
      auto read =
          careful.ReadTagged<uint64_t>(suspect_cell.clock_word_addr(), kTagClockWord);
      if (!read.ok()) {
        corroborated = true;
      } else {
        const uint64_t advance = *read - evidence.clock_value;
        corroborated =
            advance * 4 < static_cast<uint64_t>(evidence.ticks_observed) * 3;
      }
      break;
    }
    case HintReason::kCarefulCheckFailed: {
      CarefulRef careful(&probe_ctx, &prober_cell.machine().mem(), prober_cell.costs(),
                         suspect, suspect_cell.mem_base(), suspect_cell.mem_size());
      switch (evidence.structure) {
        case EvidenceStructure::kClockWord: {
          auto read = careful.ReadTagged<uint64_t>(suspect_cell.clock_word_addr(),
                                                   kTagClockWord);
          corroborated = !read.ok();
          break;
        }
        case EvidenceStructure::kChain: {
          // Re-walk the suspect's published chain with a bounded chase; the
          // prober uses its own knowledge of the head address, never one
          // supplied by the (possibly lying) accuser.
          const PhysAddr head = suspect_cell.chain_head_addr();
          if (head == 0) {
            break;
          }
          auto walk = careful.ChaseChain(head, kTagChainNode, kProbeChainMaxHops);
          prober_cell.detector().NoteTraversal(careful.last_chain_hops());
          corroborated = !walk.ok();
          break;
        }
        case EvidenceStructure::kSeqBlock: {
          const PhysAddr block = suspect_cell.seq_block_addr();
          if (block == 0) {
            break;
          }
          auto snap = careful.ReadSeqlocked(block, kTagSeqBlock, kProbeSeqMaxRetries);
          corroborated = !snap.ok() || snap->word1 != ~snap->word0;
          break;
        }
        case EvidenceStructure::kRpcReply:  // Raised as kInvariantMismatch.
        case EvidenceStructure::kNone:
          break;
      }
      break;
    }
    case HintReason::kBabbling:
      // The babbler floods everyone: the prober checks its own incoming-rate
      // counter for the suspect instead of any remote state.
      corroborated = prober_cell.detector().IncomingCount(suspect) >=
                     FailureDetector::kBabbleThreshold / 2;
      break;
    case HintReason::kInvariantMismatch:
      if (evidence.structure == EvidenceStructure::kRpcReply) {
        // The accuser saw garbage payload words in a reply. A rogue garbles
        // its replies to everyone, so the prober's own null RPC (whose reply
        // must be all-zero) reproduces the observation.
        RpcArgs args;
        RpcReply reply;
        base::Status status =
            prober_cell.rpc().Call(probe_ctx, suspect, MsgType::kNull, args, &reply);
        corroborated = !status.ok();
        for (uint64_t word : reply.w) {
          corroborated = corroborated || word != 0;
        }
        break;
      }
      [[fallthrough]];
    case HintReason::kRpcTimeout:
    case HintReason::kBusError:
      // No structural evidence to re-run: fall back to the classic probe.
      ctx.Charge(probe_ctx.elapsed);
      return ProbeSuspect(ctx, prober, suspect);
  }
  ctx.Charge(probe_ctx.elapsed);
  return corroborated;
}

}  // namespace hive
