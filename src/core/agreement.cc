#include "src/core/agreement.h"

#include "src/base/log.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/core/rpc.h"

namespace hive {
namespace {

// Cost of one oracle consultation (the paper's experiments used an oracle
// whose cost the machine model exposes "unambiguously", section 7.2).
constexpr Time kOracleRoundNs = 50 * kMicrosecond;
// Coordination messages for a voting round (collect + decide broadcasts).
constexpr Time kVoteCoordinationNs = 40 * kMicrosecond;

uint64_t StrikeKey(CellId accuser, CellId suspect) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(accuser)) << 32) |
         static_cast<uint32_t>(suspect);
}

}  // namespace

bool Agreement::ProbeSuspect(Ctx& ctx, CellId prober, CellId suspect) {
  Cell& prober_cell = system_->cell(prober);
  Cell& suspect_cell = system_->cell(suspect);

  // Probe 1: careful read of the suspect's clock word. A bus error or a bad
  // tag is a strong failure signal.
  Ctx probe_ctx;
  probe_ctx.cell = &prober_cell;
  probe_ctx.cpu = prober_cell.FirstCpu();
  probe_ctx.start = ctx.VirtualNow();
  {
    CarefulRef careful(&probe_ctx, &prober_cell.machine().mem(), prober_cell.costs(),
                       suspect, suspect_cell.mem_base(), suspect_cell.mem_size());
    auto read =
        careful.ReadTagged<uint64_t>(suspect_cell.clock_word_addr(), kTagClockWord);
    if (!read.ok()) {
      ctx.Charge(probe_ctx.elapsed);
      return true;  // Unreachable or corrupt: vote failed.
    }
  }

  // Probe 2: ping RPC; a live kernel answers at interrupt level.
  RpcArgs args;
  RpcReply reply;
  base::Status status =
      prober_cell.rpc().Call(probe_ctx, suspect, MsgType::kPing, args, &reply);
  ctx.Charge(probe_ctx.elapsed);
  return !status.ok();
}

AgreementResult Agreement::RunRound(Ctx& ctx, CellId accuser, CellId suspect,
                                    HintReason reason) {
  (void)reason;
  ++rounds_run_;
  AgreementResult result;
  const Time round_start = ctx.elapsed;

  if (mode_ == AgreementMode::kOracle) {
    ctx.Charge(kOracleRoundNs);
    Cell& cell = system_->cell(suspect);
    bool failed = !cell.alive();
    for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes();
         ++node) {
      failed = failed || system_->machine().NodeDead(node);
    }
    result.confirmed = failed;
    if (failed) {
      result.failed.push_back(suspect);
    }
  } else {
    // Voting: every live cell other than the suspect probes independently.
    ctx.Charge(kVoteCoordinationNs);
    int votes_for = 0;
    int votes_against = 0;
    for (CellId prober : system_->LiveCells()) {
      if (prober == suspect) {
        continue;
      }
      if (ProbeSuspect(ctx, prober, suspect)) {
        ++votes_for;
      } else {
        ++votes_against;
      }
    }
    result.votes_for = votes_for;
    result.votes_against = votes_against;
    result.confirmed = votes_for > votes_against;
    if (result.confirmed) {
      result.failed.push_back(suspect);
    }
  }

  if (!result.confirmed) {
    // The accuser cried wolf. Twice for the same suspect and the other cells
    // conclude the *accuser* is corrupt (paper section 4.3).
    ++false_alerts_;
    const uint64_t key = StrikeKey(accuser, suspect);
    if (++strikes_[key] >= 2) {
      strikes_.erase(key);
      result.confirmed = true;
      result.failed.push_back(accuser);
      LOG(kInfo) << "cell " << accuser << " voted down twice accusing " << suspect
                 << ": declared corrupt";
    }
  }

  result.round_cost_ns = ctx.elapsed - round_start;
  return result;
}

}  // namespace hive
