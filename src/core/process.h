// Processes and their behaviours. A process's workload is a Behavior that is
// stepped by the scheduler; each step performs one logical operation (compute,
// touch a page, file I/O, fork, barrier, exit) against the kernel API,
// charging simulated time to the execution context.

#ifndef HIVE_SRC_CORE_PROCESS_H_
#define HIVE_SRC_CORE_PROCESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/address_space.h"
#include "src/core/context.h"
#include "src/core/types.h"
#include "src/core/vnode.h"

namespace hive {

class Cell;
class Process;
class UserBarrier;

enum class StepOutcome {
  kContinue,       // More work; reschedule (possibly after quantum end).
  kBlocked,        // Parked on a barrier; the barrier wakes the process.
  kDone,           // Process exits.
  kFailed,         // Process hit an unrecoverable error (e.g. stale file).
};

// A process behaviour. Implementations live in src/workloads.
class Behavior {
 public:
  virtual ~Behavior() = default;

  // Performs one logical operation for `proc`, charging ctx. Kernel services
  // are reached through proc.cell().
  virtual StepOutcome Step(Ctx& ctx, Process& proc) = 0;

  // True when the NEXT Step is cell-local pure compute: it only charges time
  // and touches this cell's scheduler state -- no page faults, file system,
  // RPC, SIPS, barriers, forks or process completion. The parallel simulation
  // core runs slices of such steps as `safe` events concurrently across
  // cells; misdeclaring a step local trips the executor's CHECK guards
  // (loudly) rather than corrupting determinism (silently). Conservative
  // default: nothing is local.
  virtual bool NextStepLocal() const { return false; }

  // Human-readable tag for logs and stats.
  virtual std::string name() const = 0;
};

enum class ProcState {
  kReady,
  kRunning,
  kBlocked,
  kExited,
  kKilled,  // Terminated by recovery or signal.
};

class Process {
 public:
  Process(ProcId pid, Cell* cell, std::unique_ptr<Behavior> behavior);
  ~Process();

  ProcId pid() const { return pid_; }
  Cell* cell() const { return cell_; }
  AddressSpace& address_space() { return address_space_; }
  Behavior* behavior() { return behavior_.get(); }
  // Migration support: hands the behaviour (with its progress) to the new
  // component on the destination cell.
  std::unique_ptr<Behavior> ReleaseBehavior() { return std::move(behavior_); }

  ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }
  bool finished() const { return state_ == ProcState::kExited || state_ == ProcState::kKilled; }

  // COW tree leaf for anonymous pages.
  PhysAddr cow_leaf() const { return cow_leaf_; }
  void set_cow_leaf(PhysAddr addr) { cow_leaf_ = addr; }

  // Task group: processes cooperating as one parallel application. Recovery
  // kills whole groups when any member depended on a failed cell.
  int64_t task_group() const { return task_group_; }
  void set_task_group(int64_t g) { task_group_ = g; }

  // Bitmask of cells whose resources this process uses (imported pages,
  // borrowed frames, remote files, remote parent). Drives the kill policy:
  // "the probability that an application fails is proportional to the amount
  // of resources used by that application" (paper section 2).
  uint64_t dependency_mask() const { return dependency_mask_; }
  void AddDependency(CellId cell_id) {
    if (cell_id >= 0) {
      dependency_mask_ |= 1ull << cell_id;
    }
  }

  // Open files.
  int AddFile(const FileHandle& handle);
  FileHandle* GetFile(int fd);
  void RemoveFile(int fd);
  std::vector<FileHandle> OpenFiles() const;

  // Barrier the process is currently parked on (for kill cleanup).
  UserBarrier* blocked_on() const { return blocked_on_; }
  void set_blocked_on(UserBarrier* barrier) { blocked_on_ = barrier; }

  // Lifetime bookkeeping.
  Time created_at = 0;
  Time finished_at = 0;
  ProcId parent = kInvalidProc;
  std::string exit_reason;

 private:
  ProcId pid_;
  Cell* cell_;
  std::unique_ptr<Behavior> behavior_;
  AddressSpace address_space_;
  ProcState state_ = ProcState::kReady;
  PhysAddr cow_leaf_ = 0;
  int64_t task_group_ = -1;
  uint64_t dependency_mask_ = 0;
  UserBarrier* blocked_on_ = nullptr;
  std::vector<FileHandle> files_;     // Indexed by fd; invalid handles = closed.
};

// User-level barrier for parallel applications (lives in user shared memory
// conceptually; modelled natively). The last arriver releases everyone.
class UserBarrier {
 public:
  explicit UserBarrier(int parties) : parties_(parties) {}

  // Returns kBlocked if the caller must wait, kContinue if it was the last
  // arriver (everyone parked is made runnable).
  StepOutcome Arrive(Ctx& ctx, Process& proc);

  int waiting() const { return static_cast<int>(parked_.size()); }
  // Drops a killed process from the barrier so survivors are not stranded
  // behind it (the barrier degenerates as the app is torn down).
  void RemoveParty(Process* proc);

 private:
  int parties_;
  std::vector<Process*> parked_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_PROCESS_H_
