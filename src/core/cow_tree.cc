#include "src/core/cow_tree.h"

#include "src/base/log.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {
namespace {

// Local tree-walk step cost (pointer chase + tag check in own memory).
constexpr Time kLocalNodeVisitNs = 400;

}  // namespace

CowManager::CowManager(Cell* cell)
    : cell_(cell),
      // Node ids are globally unique: high bits carry the owning cell.
      next_node_id_((static_cast<uint64_t>(cell->id()) << 48) + 1) {}

base::Result<PhysAddr> CowManager::AllocNode(Ctx& ctx, PhysAddr parent_addr,
                                             CellId parent_cell) {
  ASSIGN_OR_RETURN(const PhysAddr node,
                   cell_->heap().Alloc(kTagCowNode, CowNodeLayout::kNodeBytes));
  ctx.Charge(2000);  // Allocation + initialization.
  KernelHeap& heap = cell_->heap();
  heap.Write<uint64_t>(node + CowNodeLayout::kNodeId, next_node_id_++);
  heap.Write<uint32_t>(node + CowNodeLayout::kOwnerCell,
                       static_cast<uint32_t>(cell_->id()));
  heap.Write<uint32_t>(node + CowNodeLayout::kEntryCount, 0);
  heap.Write<uint64_t>(node + CowNodeLayout::kParentAddr, parent_addr);
  heap.Write<uint32_t>(node + CowNodeLayout::kParentCell,
                       static_cast<uint32_t>(parent_cell));
  heap.Write<uint64_t>(node + CowNodeLayout::kNextExt, 0);
  return node;
}

base::Result<PhysAddr> CowManager::CreateRoot(Ctx& ctx) {
  return AllocNode(ctx, 0, kInvalidCell);
}

base::Result<PhysAddr> CowManager::CreateChild(Ctx& ctx, PhysAddr parent_addr,
                                               CellId parent_cell) {
  return AllocNode(ctx, parent_addr, parent_cell);
}

base::Status CowManager::RecordPage(Ctx& ctx, PhysAddr leaf_addr, uint64_t page_offset) {
  KernelHeap& heap = cell_->heap();
  CHECK(heap.Contains(leaf_addr)) << "RecordPage requires a local leaf";
  PhysAddr node = leaf_addr;
  for (int i = 0; i < kMaxVisit; ++i) {
    ctx.Charge(kLocalNodeVisitNs);
    const uint32_t count = heap.Read<uint32_t>(node + CowNodeLayout::kEntryCount);
    if (count < CowNodeLayout::kEntriesPerNode) {
      heap.Write<uint64_t>(node + CowNodeLayout::kEntries + 8ull * count, page_offset);
      heap.Write<uint32_t>(node + CowNodeLayout::kEntryCount, count + 1);
      return base::OkStatus();
    }
    PhysAddr ext = heap.Read<uint64_t>(node + CowNodeLayout::kNextExt);
    if (ext == 0) {
      // Chain a fresh extension node (same owner, no parent of its own).
      ASSIGN_OR_RETURN(ext, AllocNode(ctx, 0, kInvalidCell));
      heap.Write<uint64_t>(node + CowNodeLayout::kNextExt, ext);
    }
    node = ext;
  }
  return base::Internal();
}

bool CowManager::LocalNodeContains(PhysAddr node_addr, uint64_t page_offset,
                                   uint64_t* node_id_out) {
  KernelHeap& heap = cell_->heap();
  PhysAddr node = node_addr;
  for (int i = 0; i < kMaxVisit && node != 0; ++i) {
    const uint32_t count = heap.Read<uint32_t>(node + CowNodeLayout::kEntryCount);
    const uint32_t limit =
        std::min<uint32_t>(count, static_cast<uint32_t>(CowNodeLayout::kEntriesPerNode));
    for (uint32_t e = 0; e < limit; ++e) {
      if (heap.Read<uint64_t>(node + CowNodeLayout::kEntries + 8ull * e) == page_offset) {
        if (node_id_out != nullptr) {
          *node_id_out = heap.Read<uint64_t>(node_addr + CowNodeLayout::kNodeId);
        }
        return true;
      }
    }
    node = heap.Read<uint64_t>(node + CowNodeLayout::kNextExt);
  }
  return false;
}

base::Result<CowLookupResult> CowManager::Lookup(Ctx& ctx, PhysAddr leaf_addr,
                                                 uint64_t page_offset) {
  // Walk from the leaf toward the root. Local nodes are read directly (a tag
  // mismatch there means our own kernel memory is corrupt -> panic); remote
  // nodes go through the careful reference protocol.
  PhysAddr node = leaf_addr;
  CellId node_cell = cell_->id();
  // When scanning a remote extension chain, remember the main node's parent
  // so the upward walk resumes correctly after the chain ends.
  bool in_ext_chain = false;
  PhysAddr resume_parent_addr = 0;
  CellId resume_parent_cell = kInvalidCell;
  uint64_t main_node_id = 0;  // Pages in extension nodes belong to the main node.

  for (int depth = 0; depth < kMaxVisit && node != 0; ++depth) {
    if (node_cell == cell_->id()) {
      KernelHeap& heap = cell_->heap();
      ctx.Charge(kLocalNodeVisitNs);
      if (!heap.Contains(node) ||
          heap.ReadTypeTag(ctx.cpu, node) != static_cast<uint32_t>(kTagCowNode)) {
        cell_->Panic("corrupt COW tree node in local kernel memory");
        return base::Internal();
      }
      uint64_t node_id = 0;
      if (LocalNodeContains(node, page_offset, &node_id)) {
        CowLookupResult result;
        result.found = true;
        result.owner_cell = cell_->id();
        result.node_id = node_id;
        return result;
      }
      node_cell = static_cast<CellId>(heap.Read<uint32_t>(node + CowNodeLayout::kParentCell));
      node = heap.Read<uint64_t>(node + CowNodeLayout::kParentAddr);
      continue;
    }

    // Remote node: careful reference (paper section 5.3). The lookup does not
    // modify interior nodes, so shared memory stays safe.
    ++remote_node_reads_;
    if (node_cell < 0 || node_cell >= cell_->system()->num_cells()) {
      cell_->Panic("corrupt COW parent cell id");
      return base::Internal();
    }
    Cell& owner = cell_->system()->cell(node_cell);
    CarefulRef careful(&ctx, &cell_->machine().mem(), cell_->costs(), node_cell,
                       owner.mem_base(), owner.mem_size());

    base::Status tag_status = careful.CheckTag(node, kTagCowNode);
    if (!tag_status.ok()) {
      cell_->detector().RaiseHint(ctx, node_cell,
                                  tag_status.code() == base::StatusCode::kBusError
                                      ? HintReason::kBusError
                                      : HintReason::kCarefulCheckFailed);
      return tag_status;
    }

    // Copy the header fields out before use.
    auto node_id = careful.Read<uint64_t>(node + CowNodeLayout::kNodeId);
    auto count = careful.Read<uint32_t>(node + CowNodeLayout::kEntryCount);
    auto parent_addr = careful.Read<uint64_t>(node + CowNodeLayout::kParentAddr);
    auto parent_cell = careful.Read<uint32_t>(node + CowNodeLayout::kParentCell);
    auto next_ext = careful.Read<uint64_t>(node + CowNodeLayout::kNextExt);
    if (!node_id.ok() || !count.ok() || !parent_addr.ok() || !parent_cell.ok() ||
        !next_ext.ok()) {
      cell_->detector().RaiseHint(ctx, node_cell, HintReason::kBusError);
      return base::BusErrorStatus();
    }
    // Sanity-check copied values (data may be garbage even if readable).
    if (*count > CowNodeLayout::kEntriesPerNode) {
      cell_->detector().RaiseHint(ctx, node_cell, HintReason::kCarefulCheckFailed);
      return base::BadRemoteData();
    }
    bool found = false;
    for (uint32_t e = 0; e < *count && !found; ++e) {
      auto entry = careful.Read<uint64_t>(node + CowNodeLayout::kEntries + 8ull * e);
      if (!entry.ok()) {
        cell_->detector().RaiseHint(ctx, node_cell, HintReason::kBusError);
        return base::BusErrorStatus();
      }
      found = *entry == page_offset;
    }
    if (found) {
      CowLookupResult result;
      result.found = true;
      result.owner_cell = node_cell;
      result.node_id = in_ext_chain ? main_node_id : *node_id;
      return result;
    }
    if (*next_ext != 0) {
      if (!in_ext_chain) {
        in_ext_chain = true;
        main_node_id = *node_id;
        resume_parent_addr = *parent_addr;
        resume_parent_cell = static_cast<CellId>(*parent_cell);
      }
      node = *next_ext;  // Same owner cell.
      continue;
    }
    if (in_ext_chain) {
      in_ext_chain = false;
      node = resume_parent_addr;
      node_cell = resume_parent_cell;
    } else {
      node = *parent_addr;
      node_cell = static_cast<CellId>(*parent_cell);
    }
  }

  CowLookupResult result;
  result.found = false;
  return result;
}

void CowManager::FreeNode(Ctx& ctx, PhysAddr node_addr) {
  (void)ctx;
  KernelHeap& heap = cell_->heap();
  if (!heap.Contains(node_addr)) {
    return;
  }
  cell_->swap().DropNode(heap.Read<uint64_t>(node_addr + CowNodeLayout::kNodeId));
  // Free extension chain too.
  PhysAddr ext = heap.Read<uint64_t>(node_addr + CowNodeLayout::kNextExt);
  heap.Free(node_addr);
  for (int i = 0; i < kMaxVisit && ext != 0; ++i) {
    const PhysAddr next = heap.Read<uint64_t>(ext + CowNodeLayout::kNextExt);
    heap.Free(ext);
    ext = next;
  }
}

}  // namespace hive
