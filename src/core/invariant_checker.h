// Debug-mode invariant auditor: cross-checks the hardware firewall
// write-permission vectors against the kernel's own bookkeeping (page
// ownership, firewall grant counts, pfdat export and loan state).
//
// The firewall (paper section 4.2) is only as good as the vectors the kernels
// program into it: a page whose vector admits a processor the bookkeeping
// never granted is one wild write away from undetected corruption. The
// auditor recomputes the expected vector for every local page of every live
// cell --
//
//   expected = (loaned_out ? borrower's CpuMask : owner's CpuMask)
//              | union of CpuMask(client) over outstanding firewall grants
//
// -- and reports any page whose hardware vector disagrees, plus export/loan
// bookkeeping that lost its matching grant. A mismatch that implicates a
// specific remote cell (an unauthorized permission bit) is surfaced through
// the normal failure-detection path as a HintReason::kInvariantMismatch, so
// tests and the post-recovery audit exercise the same alert machinery real
// detections use.
//
// The audit is a pure read of simulator state: it charges no simulated time
// and is skipped entirely in SMP baseline mode, when firewall checking is
// disabled, and under the kGlobalBit ablation (whose grants are deliberately
// lossy: one bit per page means revocation cannot restore per-cell state).

#ifndef HIVE_SRC_CORE_INVARIANT_CHECKER_H_
#define HIVE_SRC_CORE_INVARIANT_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace hive {

class HiveSystem;

struct InvariantMismatch {
  CellId cell = kInvalidCell;  // The audited cell (owner of the page).
  Pfn pfn = 0;
  uint64_t expected = 0;       // Expected firewall vector (0 for bookkeeping-only checks).
  uint64_t actual = 0;
  std::string detail;

  std::string ToString() const;
};

struct InvariantReport {
  std::vector<InvariantMismatch> mismatches;
  uint64_t pages_audited = 0;
  int cells_audited = 0;

  bool clean() const { return mismatches.empty(); }
};

class InvariantChecker {
 public:
  explicit InvariantChecker(HiveSystem* system) : system_(system) {}

  // Audits every live cell. With raise_hints, each mismatch that implicates
  // a specific cell raises a failure-detection hint from the audited cell.
  InvariantReport AuditAll(bool raise_hints = false);

  // Audits one cell's local pages and sharing state.
  InvariantReport AuditCell(CellId cell_id, bool raise_hints = false);

 private:
  void AuditFirewallVectors(CellId cell_id, bool raise_hints, InvariantReport* report);
  void AuditExports(CellId cell_id, InvariantReport* report);

  HiveSystem* system_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_INVARIANT_CHECKER_H_
