#include "src/core/vm_fault.h"

#include <vector>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {
namespace {

constexpr Time kTlbRefillNs = 200;

LogicalPageId AnonLpid(CellId owner, uint64_t node_id, uint64_t offset) {
  LogicalPageId lpid;
  lpid.kind = LogicalPageId::Kind::kAnon;
  lpid.data_home = owner;
  lpid.object = node_id;
  lpid.page_offset = offset;
  return lpid;
}

// Creates (and zero-fills) a fresh anonymous page recorded at the process's
// local COW leaf.
base::Result<Pfdat*> CreateAnonPage(Ctx& ctx, Process& proc, uint64_t offset) {
  Cell& cell = *ctx.cell;
  KernelHeap& heap = cell.heap();
  const uint64_t leaf_id = heap.Read<uint64_t>(proc.cow_leaf() + CowNodeLayout::kNodeId);

  AllocConstraints constraints;
  ASSIGN_OR_RETURN(Pfdat * pfdat, cell.allocator().AllocFrame(ctx, constraints));
  // Zero the frame through the checked store path, in one bus transaction so
  // the accessibility and firewall checks run once per page, not per chunk.
  const uint64_t page_size = cell.machine().mem().page_size();
  thread_local std::vector<uint8_t> zeros;
  if (zeros.size() != page_size) {
    zeros.assign(page_size, 0);  // Only ever read; stays zero across calls.
  }
  // hive-lint: allow(R1): zero-fill of a freshly allocated frame through the checked store path.
  cell.machine().mem().Write(ctx.cpu, pfdat->frame, std::span<const uint8_t>(zeros));
  pfdat->lpid = AnonLpid(cell.id(), leaf_id, offset);
  pfdat->dirty = true;  // Anonymous pages have no clean backing store.
  cell.pfdats().InsertHash(pfdat);
  RETURN_IF_ERROR_RESULT(cell.cow().RecordPage(ctx, proc.cow_leaf(), offset));
  return pfdat;
}

// Copies the contents of `src` into a fresh anonymous page at the leaf
// (copy-on-write break).
base::Result<Pfdat*> CowCopy(Ctx& ctx, Process& proc, Pfdat* src, uint64_t offset) {
  Cell& cell = *ctx.cell;
  ASSIGN_OR_RETURN(Pfdat * dst, CreateAnonPage(ctx, proc, offset));
  const uint64_t page_size = cell.machine().mem().page_size();
  // COW breaks are steady-state work; reuse one per-thread copy buffer
  // instead of allocating a page-sized vector per break.
  thread_local std::vector<uint8_t> buf;
  buf.resize(page_size);
  try {
    // hive-lint: allow(R1): page-content copy (COW break) of data pages, not a kernel structure read.
    cell.machine().mem().Read(ctx.cpu, src->frame, std::span<uint8_t>(buf));
    // hive-lint: allow(R3): fault boundary of the page copy; converted to Status right here.
  } catch (const flash::BusError&) {
    // Source page vanished (remote home died): undo and report.
    return base::IoError();
  }
  // hive-lint: allow(R1): destination is the local frame just allocated above.
  cell.machine().mem().Write(ctx.cpu, dst->frame, std::span<const uint8_t>(buf));
  // Copying a page costs one pass of loads+stores; dominated by misses.
  ctx.Charge(static_cast<Time>(page_size / 128) * cell.costs().remote_miss_ns / 4);
  return dst;
}

base::Result<Pfdat*> BindRemoteAnonPage(Ctx& ctx, Process& proc, CellId owner,
                                        uint64_t node_id, uint64_t offset, bool writable) {
  Cell& cell = *ctx.cell;
  const KernelCosts& costs = cell.costs();
  // Same client-side cost structure as a remote file fault (table 5.2).
  ctx.Charge(costs.fault_client_fs_ns + costs.fault_client_locking_ns +
             costs.fault_client_vm_misc_ns);

  RpcArgs args;
  args.w[0] = node_id;
  args.w[1] = offset;
  args.w[2] = static_cast<uint64_t>(cell.id());
  args.w[3] = writable ? 1 : 0;
  RpcReply reply;
  RETURN_IF_ERROR_RESULT(cell.rpc().CallFault(ctx, owner, MsgType::kCowBind, args, &reply));

  const PhysAddr frame = reply.w[0];
  const uint64_t page_size = cell.machine().mem().page_size();
  if (frame % page_size != 0 || !cell.machine().mem().ValidRange(frame, page_size) ||
      cell.heap().Contains(frame)) {
    cell.detector().RaiseHint(ctx, owner, HintReason::kCarefulCheckFailed);
    return base::BadRemoteData();
  }

  ctx.Charge(costs.fault_import_ns);
  Pfdat* pfdat = cell.pfdats().FindByFrame(frame);
  if (pfdat == nullptr) {
    pfdat = cell.pfdats().AddExtended(frame);
  } else if (pfdat->HasLogicalBinding()) {
    cell.pfdats().RemoveHash(pfdat);
  }
  pfdat->lpid = AnonLpid(owner, node_id, offset);
  pfdat->imported_from = owner;
  pfdat->import_writable = writable;
  pfdat->refcount++;
  cell.pfdats().InsertHash(pfdat);
  proc.AddDependency(owner);
  return pfdat;
}

base::Status AnonFault(Ctx& ctx, Process& proc, const Region& region, VirtAddr va,
                       bool write) {
  Cell& cell = *ctx.cell;
  const uint64_t page_size = cell.machine().mem().page_size();
  const VirtAddr va_page = va / page_size * page_size;
  const uint64_t offset = va / page_size;  // Anonymous pages are keyed by VA page.
  KernelHeap& heap = cell.heap();

  if (proc.cow_leaf() == 0) {
    return base::Internal();
  }
  const uint64_t leaf_id = heap.Read<uint64_t>(proc.cow_leaf() + CowNodeLayout::kNodeId);

  ASSIGN_OR_RETURN(const CowLookupResult found,
                   cell.cow().Lookup(ctx, proc.cow_leaf(), offset));

  if (!found.found) {
    // First touch: zero-fill at the leaf.
    ctx.Charge(cell.costs().fault_local_ns);
    ASSIGN_OR_RETURN(Pfdat * pfdat, CreateAnonPage(ctx, proc, offset));
    proc.address_space().InstallMapping(va_page, pfdat, region.writable);
    return base::OkStatus();
  }

  const bool own_page = found.owner_cell == cell.id() && found.node_id == leaf_id;

  if (found.owner_cell == cell.id()) {
    ctx.Charge(cell.costs().fault_local_ns);
    const LogicalPageId lpid = AnonLpid(cell.id(), found.node_id, offset);
    Pfdat* pfdat = cell.pfdats().FindByLpid(lpid);
    if (pfdat == nullptr && cell.swap().Contains(lpid)) {
      // The clock hand swapped it out: bring it back from the swap partition.
      auto swapped = cell.swap().SwapIn(ctx, lpid);
      RETURN_IF_ERROR(swapped.status());
      pfdat = *swapped;
      pfdat->refcount--;  // SwapIn's reference transfers to the logic below.
    }
    if (pfdat == nullptr) {
      // The tree says the page exists but neither the cache nor swap has it:
      // internal corruption.
      cell.Panic("anonymous page missing from page cache and swap");
      return base::Internal();
    }
    if (write && !own_page) {
      ASSIGN_OR_RETURN(Pfdat * copy, CowCopy(ctx, proc, pfdat, offset));
      proc.address_space().InstallMapping(va_page, copy, /*writable=*/true);
      return base::OkStatus();
    }
    pfdat->refcount++;
    proc.address_space().InstallMapping(va_page, pfdat, write || own_page);
    return base::OkStatus();
  }

  // Page recorded in a remote ancestor.
  ASSIGN_OR_RETURN(Pfdat * imported, BindRemoteAnonPage(ctx, proc, found.owner_cell,
                                                        found.node_id, offset,
                                                        /*writable=*/false));
  if (write) {
    ASSIGN_OR_RETURN(Pfdat * copy, CowCopy(ctx, proc, imported, offset));
    cell.fs().ReleasePage(ctx, imported);
    proc.address_space().InstallMapping(va_page, copy, /*writable=*/true);
    return base::OkStatus();
  }
  proc.address_space().InstallMapping(va_page, imported, /*writable=*/false);
  return base::OkStatus();
}

}  // namespace

base::Status PageFault(Ctx& ctx, Process& proc, VirtAddr va, bool write) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kVmFault);
  Cell& cell = *ctx.cell;
  const uint64_t page_size = cell.machine().mem().page_size();
  const VirtAddr va_page = va / page_size * page_size;

  Mapping* mapping = proc.address_space().FindMapping(va_page);
  if (mapping != nullptr && (!write || mapping->writable)) {
    // Pure TLB refill: no kernel data structures touched, no Hive tax.
    ctx.Charge(kTlbRefillNs);
    return base::OkStatus();
  }
  cell.ChargeSyscallTax(ctx);

  // Section 5.2 accounting: faults that enter the kernel path.
  VmStats& stats = cell.vm_stats();
  ++stats.faults;
  const Time fault_begin = ctx.elapsed;
  const uint64_t remote_before = cell.fs().remote_faults();
  const uint64_t hits_before = cell.fs().local_fault_hits();
  struct StatScope {
    Ctx& ctx;
    VmStats& stats;
    Cell& cell;
    Time begin;
    uint64_t remote_before;
    uint64_t hits_before;
    ~StatScope() {
      stats.fault_ns += ctx.elapsed - begin;
      stats.remote_faults += cell.fs().remote_faults() - remote_before;
      stats.cache_hit_faults += (cell.fs().remote_faults() - remote_before) +
                                (cell.fs().local_fault_hits() - hits_before);
    }
  } stat_scope{ctx, stats, cell, fault_begin, remote_before, hits_before};

  ASSIGN_OR_RETURN(const Region region, proc.address_space().FindRegion(ctx, va));
  if (write && !region.writable) {
    return base::PermissionDenied();
  }

  if (!region.is_file) {
    if (mapping != nullptr) {
      // Write to a read-only anon mapping: COW break replaces the mapping.
      cell.fs().ReleasePage(ctx, mapping->pfdat);
      proc.address_space().RemoveMapping(va_page);
    }
    return AnonFault(ctx, proc, region, va, write);
  }

  FileHandle handle;
  handle.data_home = region.data_home;
  handle.vnode = region.vnode;
  handle.generation = region.generation;

  const uint64_t page_index =
      region.file_page_offset + (va_page - region.va_start) / page_size;
  // Paper section 4.2 policy: faulting a page into a *writable portion* of an
  // address space grants the whole client cell write access, even on a read
  // fault -- so the cell can freely reschedule the process on its CPUs.
  const bool want_write = region.writable;
  auto got = cell.fs().GetPage(ctx, handle, page_index, want_write,
                               FileSystem::AccessPath::kFault);
  if (!got.ok()) {
    return got.status();
  }
  if (mapping != nullptr) {
    cell.fs().ReleasePage(ctx, mapping->pfdat);
    proc.address_space().RemoveMapping(va_page);
  }
  proc.address_space().InstallMapping(va_page, *got, region.writable);
  if ((*got)->imported_from != kInvalidCell && want_write) {
    // A writable imported page is a hard dependency: a wild write from the
    // data home's side could corrupt it undetectably.
    proc.AddDependency((*got)->imported_from);
  }
  return base::OkStatus();
}

}  // namespace hive
