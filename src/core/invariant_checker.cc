#include "src/core/invariant_checker.h"

#include <bit>
#include <sstream>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {

std::string InvariantMismatch::ToString() const {
  std::ostringstream out;
  out << "cell " << cell << " pfn " << pfn << ": " << detail;
  if (expected != actual) {
    out << " (expected vector 0x" << std::hex << expected << ", actual 0x" << actual
        << std::dec << ")";
  }
  return out.str();
}

InvariantReport InvariantChecker::AuditAll(bool raise_hints) {
  InvariantReport report;
  if (system_->smp_mode() || !system_->machine().firewall().checking_enabled() ||
      system_->options().firewall_policy == FirewallPolicy::kGlobalBit) {
    return report;
  }
  for (CellId id : system_->LiveCells()) {
    InvariantReport one = AuditCell(id, raise_hints);
    report.pages_audited += one.pages_audited;
    report.cells_audited += one.cells_audited;
    report.mismatches.insert(report.mismatches.end(), one.mismatches.begin(),
                             one.mismatches.end());
  }
  return report;
}

InvariantReport InvariantChecker::AuditCell(CellId cell_id, bool raise_hints) {
  InvariantReport report;
  if (system_->smp_mode() || !system_->machine().firewall().checking_enabled() ||
      system_->options().firewall_policy == FirewallPolicy::kGlobalBit) {
    return report;
  }
  Cell& cell = system_->cell(cell_id);
  if (!cell.alive()) {
    return report;
  }
  report.cells_audited = 1;
  AuditFirewallVectors(cell_id, raise_hints, &report);
  AuditExports(cell_id, &report);
  return report;
}

void InvariantChecker::AuditFirewallVectors(CellId cell_id, bool raise_hints,
                                            InvariantReport* report) {
  Cell& cell = system_->cell(cell_id);
  flash::PhysMem& mem = system_->machine().mem();
  flash::Firewall& firewall = system_->machine().firewall();
  const Pfn first = mem.PfnOfAddr(cell.mem_base());
  const Pfn count = cell.mem_size() / mem.page_size();

  for (Pfn pfn = first; pfn < first + count; ++pfn) {
    ++report->pages_audited;
    Pfdat* pfdat = cell.pfdats().FindByFrame(mem.AddrOfPfn(pfn));
    uint64_t expected = cell.CpuMask();

    if (pfdat != nullptr) {
      const bool in_loan_set = cell.allocator().IsLoanedFrame(pfdat);
      if (pfdat->loaned_out != in_loan_set) {
        report->mismatches.push_back(
            {cell_id, pfn, 0, 0,
             pfdat->loaned_out ? "pfdat marked loaned_out but frame not in allocator loan set"
                               : "frame in allocator loan set but pfdat not marked loaned_out"});
      }
      if (pfdat->loaned_out) {
        if (pfdat->loaned_to < 0 || pfdat->loaned_to >= system_->num_cells() ||
            pfdat->loaned_to == cell_id) {
          report->mismatches.push_back(
              {cell_id, pfn, 0, 0, "loaned_out frame has invalid loaned_to cell"});
        } else {
          // A loaned frame belongs to the borrower: only its CPUs may write.
          expected = system_->cell(pfdat->loaned_to).CpuMask();
        }
      }
    }
    expected |= cell.firewall_manager().GrantedCpuMask(pfn);

    const uint64_t actual = firewall.GetVector(pfn);
    if (actual == expected) {
      continue;
    }
    InvariantMismatch mismatch{cell_id, pfn, expected, actual,
                               "firewall vector disagrees with kernel bookkeeping"};
    const uint64_t unauthorized = actual & ~expected;
    report->mismatches.push_back(mismatch);
    cell.Trace(TraceEvent::kInvariantMismatch, pfn, unauthorized);
    if (raise_hints && unauthorized != 0) {
      // The extra permission bits name the cell that could wild-write this
      // page: surface it through the regular detection path.
      const int cpu = std::countr_zero(unauthorized);
      const CellId suspect = system_->CellOfCpu(cpu);
      if (suspect != kInvalidCell && suspect != cell_id) {
        Ctx ctx = cell.MakeCtx();
        cell.detector().RaiseHint(ctx, suspect, HintReason::kInvariantMismatch);
      }
    }
  }
}

void InvariantChecker::AuditExports(CellId cell_id, InvariantReport* report) {
  Cell& cell = system_->cell(cell_id);
  flash::PhysMem& mem = system_->machine().mem();
  cell.pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->extended || pfdat->exported_writable == 0) {
      return;
    }
    // Every writable export must be backed by a grant on the frame's memory
    // home (the data home itself when the frame is local, the lender when the
    // page lives in a borrowed frame).
    const CellId home_id = system_->CellOfAddr(pfdat->frame);
    if (home_id == kInvalidCell) {
      return;
    }
    const Pfn pfn = mem.PfnOfAddr(pfdat->frame);
    FirewallManager& home_fwm = system_->cell(home_id).firewall_manager();
    for (CellId client = 0; client < system_->num_cells(); ++client) {
      if ((pfdat->exported_writable & (1ull << client)) == 0 || client == home_id) {
        continue;
      }
      if (!home_fwm.HasGrant(pfn, client)) {
        std::ostringstream detail;
        detail << "exported_writable to cell " << client
               << " without a matching firewall grant on memory home " << home_id;
        report->mismatches.push_back({cell_id, pfn, 0, 0, detail.str()});
      }
    }
  });
}

}  // namespace hive
