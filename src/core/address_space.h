// Process address spaces: a list of regions mapping virtual ranges to file
// pages or anonymous (COW) pages, plus the set of hardware mappings
// (modelling the TLB + page tables).
//
// Region entries live in kernel-heap simulated memory so fault injection can
// corrupt them like the paper does (table 7.4, "corrupt pointer in process
// address map"). Traversal verifies allocator type tags; a mismatch means the
// kernel's own memory is corrupt and the cell panics.

#ifndef HIVE_SRC_CORE_ADDRESS_SPACE_H_
#define HIVE_SRC_CORE_ADDRESS_SPACE_H_

#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/pfdat.h"
#include "src/core/types.h"
#include "src/core/vnode.h"

namespace hive {

class Cell;

// Layout of a region entry in simulated memory.
struct AddrMapEntryLayout {
  static constexpr uint64_t kVaStart = 0;      // u64
  static constexpr uint64_t kLength = 8;       // u64
  static constexpr uint64_t kKind = 16;        // u32: 1 = file, 2 = anon
  static constexpr uint64_t kWritable = 20;    // u32
  static constexpr uint64_t kObject = 24;      // u64: vnode id (file regions)
  static constexpr uint64_t kDataHome = 32;    // u32
  static constexpr uint64_t kGeneration = 36;  // u32
  static constexpr uint64_t kFileOffset = 40;  // u64: starting page offset
  static constexpr uint64_t kNext = 48;        // u64: next entry (0 = end)
  static constexpr uint64_t kEntryBytes = 56;

  static constexpr uint32_t kKindFile = 1;
  static constexpr uint32_t kKindAnon = 2;
};

// Decoded form of a region entry.
struct Region {
  PhysAddr entry_addr = 0;
  VirtAddr va_start = 0;
  uint64_t length = 0;
  bool is_file = false;
  bool writable = false;
  VnodeId vnode = kInvalidVnode;  // On the data home (file regions).
  CellId data_home = kInvalidCell;
  Generation generation = 0;
  uint64_t file_page_offset = 0;
};

// A hardware mapping currently installed for the process.
struct Mapping {
  Pfdat* pfdat = nullptr;
  bool writable = false;
};

class AddressSpace {
 public:
  explicit AddressSpace(Cell* cell) : cell_(cell) {}

  // Appends a file-backed region. The generation snapshot comes from the
  // handle (stale after preemptive discard => faults observe an error).
  base::Status MapFile(Ctx& ctx, VirtAddr va, uint64_t length, const FileHandle& handle,
                       bool writable, uint64_t file_page_offset = 0);

  // Appends an anonymous region (pages found through the process COW leaf).
  base::Status MapAnon(Ctx& ctx, VirtAddr va, uint64_t length, bool writable);

  // Region lookup by virtual address. Traverses the simulated-memory list
  // verifying type tags; returns kInternal (and panics the cell) on
  // corruption, kNotFound for an unmapped address.
  base::Result<Region> FindRegion(Ctx& ctx, VirtAddr va);

  // Hardware mappings (TLB + ptes).
  Mapping* FindMapping(VirtAddr va_page);
  void InstallMapping(VirtAddr va_page, Pfdat* pfdat, bool writable);
  void RemoveMapping(VirtAddr va_page);

  // Recovery: drop every hardware mapping (TLB flush); optionally only those
  // whose frame is not local to `cell`. Returns mappings removed. Installed
  // pfdat references are released through the file system.
  int FlushMappings(Ctx& ctx, bool remote_only);

  // Fork support: duplicates the region list of `parent` into this (empty)
  // address space. `parent_ctx` runs on the parent's cell.
  base::Status CopyFrom(Ctx& ctx, Ctx& parent_ctx, AddressSpace& parent);

  // Process teardown: frees all entries and mappings.
  void Teardown(Ctx& ctx);

  // Enumerates decoded regions (trusted local walk for teardown/recovery).
  std::vector<Region> ListRegions(Ctx& ctx);

  size_t mapping_count() const { return mappings_.size(); }

 private:
  base::Status AppendEntry(Ctx& ctx, const Region& region);

  Cell* cell_;
  PhysAddr head_ = 0;  // First entry in simulated memory; 0 = empty.
  PhysAddr tail_ = 0;
  std::unordered_map<VirtAddr, Mapping> mappings_;  // Keyed by page-aligned VA.
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_ADDRESS_SPACE_H_
