// The FLASH firewall (paper section 4.2): a 64-bit write-permission vector per
// 4 KB page of memory, stored and checked by the coherence controller of the
// node that owns the page. Bit i grants write permission to processor i (on
// machines larger than 64 processors each bit covers a group; this model
// supports up to 64 CPUs, which covers the paper's configurations).
//
// Hardware properties modelled here:
//  - Only processors local to a node may change the firewall bits of that
//    node's memory (enforced with a CHECK: violating it is a kernel bug, not
//    a runtime fault).
//  - A write to a page whose bit is not set fails with a bus error; the check
//    is performed on the store path in PhysMem.
//  - Checking costs latency on cache-line ownership requests; changing bits
//    costs uncached writes (and revocation a writeback sync). Costs are
//    charged by the callers through CacheModel/Machine.

#ifndef HIVE_SRC_FLASH_FIREWALL_H_
#define HIVE_SRC_FLASH_FIREWALL_H_

#include <cstdint>
#include <vector>

#include "src/flash/config.h"

namespace flash {

class Firewall {
 public:
  explicit Firewall(const MachineConfig& config);

  // All-ones at power-on: a freshly booted machine behaves like a normal
  // multiprocessor until a kernel configures protection.
  static constexpr uint64_t kAllowAll = ~0ull;

  uint64_t GetVector(Pfn pfn) const { return vectors_[pfn]; }

  // Replaces the permission vector for a page. `requesting_cpu` must be local
  // to the node owning the page (hardware restriction, section 4.2).
  void SetVector(Pfn pfn, uint64_t mask, int requesting_cpu);

  void GrantCpus(Pfn pfn, uint64_t mask, int requesting_cpu);
  void RevokeCpus(Pfn pfn, uint64_t mask, int requesting_cpu);

  bool MayWrite(Pfn pfn, int cpu) const {
    return (vectors_[pfn] & (1ull << cpu)) != 0;
  }

  // True if checking is enabled at all. Disabling models the paper's
  // check-disabled runs used to measure the firewall's latency cost and the
  // SMP-OS baseline.
  bool checking_enabled() const { return checking_enabled_; }
  void set_checking_enabled(bool enabled) { checking_enabled_ = enabled; }

  int NodeOfPfn(Pfn pfn) const { return static_cast<int>(pfn / pages_per_node_); }
  int NodeOfCpu(int cpu) const { return cpu / cpus_per_node_; }

  // Counters for the section 4.2 measurements.
  uint64_t checks_performed() const { return checks_performed_; }
  uint64_t writes_denied() const { return writes_denied_; }
  uint64_t vector_changes() const { return vector_changes_; }
  void CountCheck() { ++checks_performed_; }
  void CountDenied() { ++writes_denied_; }

 private:
  uint64_t pages_per_node_;
  int cpus_per_node_;
  bool checking_enabled_ = true;
  std::vector<uint64_t> vectors_;

  uint64_t checks_performed_ = 0;
  uint64_t writes_denied_ = 0;
  uint64_t vector_changes_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_FIREWALL_H_
