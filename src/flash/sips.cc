#include "src/flash/sips.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/flash/fault_injector.h"

namespace flash {

uint32_t SipsChecksum(const std::array<uint8_t, kSipsPayloadBytes>& payload) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : payload) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

Sips::Sips(EventQueue* queue, const MachineConfig& config, const Interconnect* interconnect)
    : queue_(queue),
      interconnect_(interconnect),
      cpus_per_node_(config.cpus_per_node),
      queue_depth_(config.sips_queue_depth),
      ipi_ns_(config.latency.ipi_ns),
      payload_ns_(config.latency.sips_payload_ns),
      handlers_(config.num_nodes),
      inflight_requests_(config.num_nodes, 0),
      inflight_replies_(config.num_nodes, 0),
      node_dead_(config.num_nodes, false) {}

Sips::~Sips() = default;

void Sips::SetHandler(int node, SipsHandler handler) {
  handlers_[static_cast<size_t>(node)] = std::move(handler);
}

void Sips::SetNodeDead(int node, bool dead) { node_dead_[static_cast<size_t>(node)] = dead; }

void Sips::EnableFaultModel(uint64_t seed) {
  fault_model_ = std::make_unique<MessageFaultModel>(seed);
}

void Sips::ScheduleDelivery(SipsMessage msg, Time delay, bool release_credit) {
  queue_->ScheduleAfter(delay, [this, msg, release_credit]() mutable {
    base::SimProfileScope profile_scope(base::SimSubsystem::kSips);
    if (release_credit) {
      auto& counter = msg.is_reply
                          ? inflight_replies_[static_cast<size_t>(msg.dst_node)]
                          : inflight_requests_[static_cast<size_t>(msg.dst_node)];
      --counter;
    }
    if (node_dead_[static_cast<size_t>(msg.dst_node)]) {
      ++messages_dropped_;
      return;
    }
    auto& handler = handlers_[static_cast<size_t>(msg.dst_node)];
    if (!handler) {
      ++messages_dropped_;
      return;
    }
    if (SipsChecksum(msg.payload) != msg.checksum) {
      // The line was corrupted in flight; the receiver discards it. The
      // corruption degrades into loss, which the layer above retries.
      ++messages_dropped_;
      ++corrupt_detected_;
      return;
    }
    msg.deliver_time = queue_->Now();
    handler(msg);
  });
}

base::Status Sips::Send(int src_cpu, int dst_node,
                        bool is_reply,
                        const std::array<uint8_t, kSipsPayloadBytes>& payload) {
  // A SIPS send is a cross-cell effect by definition: reaching here from a
  // safe-tagged event inside a parallel window is a tagging bug that would
  // silently break the deterministic merge (lint R10, parallel form).
  CHECK(!EventQueue::OnWorkerThread()) << "SIPS send from a safe parallel event";
  if (node_dead_[static_cast<size_t>(NodeOfCpu(src_cpu))]) {
    // A dead node sends nothing; callers on dead nodes should be halted
    // already, this is a backstop.
    ++messages_dropped_;
    return base::OkStatus();
  }
  auto& inflight =
      is_reply ? inflight_replies_[static_cast<size_t>(dst_node)]
               : inflight_requests_[static_cast<size_t>(dst_node)];
  if (inflight >= queue_depth_) {
    return base::ResourceExhausted();
  }
  ++inflight;
  ++messages_sent_;

  SipsMessage msg;
  msg.src_cpu = src_cpu;
  msg.dst_node = dst_node;
  msg.is_reply = is_reply;
  msg.send_time = queue_->Now();
  msg.payload = payload;
  msg.checksum = SipsChecksum(payload);

  const int src_node = NodeOfCpu(src_cpu);
  Time extra_delay = 0;
  bool duplicate = false;
  if (fault_model_ != nullptr) {
    const MessageFaultDecision decision =
        fault_model_->Sample(queue_->Now(), src_node, dst_node);
    switch (decision.kind) {
      case MessageFaultKind::kNone:
        break;
      case MessageFaultKind::kDrop:
        // The mesh ate the line. Release the flow-control credit (hardware
        // reclaims the slot) and tell the sender OK: loss is silent.
        --inflight;
        ++messages_dropped_;
        return base::OkStatus();
      case MessageFaultKind::kDuplicate:
        duplicate = true;
        break;
      case MessageFaultKind::kDelay:
        // A delayed line took a non-minimal route: at least one detour hop.
        extra_delay = std::max<Time>(
            decision.delay_ns,
            interconnect_ == nullptr
                ? 0
                : interconnect_->DetourExtraNs(src_node, dst_node, 1));
        break;
      case MessageFaultKind::kCorrupt:
        // Flip one bit AFTER the checksum was computed, so the receiver can
        // detect the damage.
        msg.payload[decision.corrupt_byte] ^= decision.corrupt_mask;
        break;
    }
  }

  // Delivery: IPI latency (plus any per-hop mesh cost for the route), then
  // the payload costs one more line access when the receiving processor
  // touches it. We fold the payload access into the deliver_time.
  const Time route_extra =
      interconnect_ == nullptr
          ? 0
          : interconnect_->RouteExtraNs(src_node, dst_node);
  const Time base_delay = ipi_ns_ + payload_ns_ + route_extra;
  ScheduleDelivery(msg, base_delay + extra_delay, /*release_credit=*/true);
  if (duplicate) {
    // The duplicate rides one payload time behind the original and does not
    // consume an extra flow-control credit (the controller already charged
    // the original).
    ++messages_sent_;
    ScheduleDelivery(msg, base_delay + payload_ns_, /*release_credit=*/false);
  }
  return base::OkStatus();
}

}  // namespace flash
