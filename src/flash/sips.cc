#include "src/flash/sips.h"

#include "src/base/log.h"

namespace flash {

Sips::Sips(EventQueue* queue, const MachineConfig& config, const Interconnect* interconnect)
    : queue_(queue),
      interconnect_(interconnect),
      cpus_per_node_(config.cpus_per_node),
      queue_depth_(config.sips_queue_depth),
      ipi_ns_(config.latency.ipi_ns),
      payload_ns_(config.latency.sips_payload_ns),
      handlers_(config.num_nodes),
      inflight_requests_(config.num_nodes, 0),
      inflight_replies_(config.num_nodes, 0),
      node_dead_(config.num_nodes, false) {}

void Sips::SetHandler(int node, SipsHandler handler) {
  handlers_[static_cast<size_t>(node)] = std::move(handler);
}

void Sips::SetNodeDead(int node, bool dead) { node_dead_[static_cast<size_t>(node)] = dead; }

base::Status Sips::Send(int src_cpu, int dst_node,
                        bool is_reply,
                        const std::array<uint8_t, kSipsPayloadBytes>& payload) {
  if (node_dead_[static_cast<size_t>(NodeOfCpu(src_cpu))]) {
    // A dead node sends nothing; callers on dead nodes should be halted
    // already, this is a backstop.
    ++messages_dropped_;
    return base::OkStatus();
  }
  auto& inflight =
      is_reply ? inflight_replies_[static_cast<size_t>(dst_node)]
               : inflight_requests_[static_cast<size_t>(dst_node)];
  if (inflight >= queue_depth_) {
    return base::ResourceExhausted();
  }
  ++inflight;
  ++messages_sent_;

  SipsMessage msg;
  msg.src_cpu = src_cpu;
  msg.dst_node = dst_node;
  msg.is_reply = is_reply;
  msg.send_time = queue_->Now();
  msg.payload = payload;

  // Delivery: IPI latency (plus any per-hop mesh cost for the route), then
  // the payload costs one more line access when the receiving processor
  // touches it. We fold the payload access into the deliver_time.
  const Time route_extra =
      interconnect_ == nullptr
          ? 0
          : interconnect_->RouteExtraNs(NodeOfCpu(src_cpu), dst_node);
  queue_->ScheduleAfter(ipi_ns_ + payload_ns_ + route_extra, [this, msg]() mutable {
    auto& counter = msg.is_reply ? inflight_replies_[static_cast<size_t>(msg.dst_node)]
                                 : inflight_requests_[static_cast<size_t>(msg.dst_node)];
    --counter;
    if (node_dead_[static_cast<size_t>(msg.dst_node)]) {
      ++messages_dropped_;
      return;
    }
    auto& handler = handlers_[static_cast<size_t>(msg.dst_node)];
    if (!handler) {
      ++messages_dropped_;
      return;
    }
    msg.deliver_time = queue_->Now();
    handler(msg);
  });
  return base::OkStatus();
}

}  // namespace flash
