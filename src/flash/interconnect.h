// The mesh interconnect (paper figure 2.1: "the nodes communicate through a
// high-speed low-latency mesh network"). Nodes are arranged in the most
// square 2-D mesh that fits; distances are Manhattan hops.
//
// The paper's machine model charges a flat 700 ns average miss latency, so
// per-hop latency defaults to zero and the mesh contributes topology only;
// set LatencyParams::mesh_hop_extra_ns to study distance-dependent costs on
// larger machines.

#ifndef HIVE_SRC_FLASH_INTERCONNECT_H_
#define HIVE_SRC_FLASH_INTERCONNECT_H_

#include <cstdint>

#include "src/flash/config.h"

namespace flash {

class Interconnect {
 public:
  explicit Interconnect(const MachineConfig& config);

  int width() const { return width_; }
  int height() const { return height_; }

  int XOf(int node) const { return node % width_; }
  int YOf(int node) const { return node / width_; }

  // Manhattan hop distance between two nodes (0 for the same node).
  int HopDistance(int node_a, int node_b) const;

  // Extra message latency for the given route.
  Time RouteExtraNs(int node_a, int node_b) const {
    return static_cast<Time>(HopDistance(node_a, node_b)) * hop_extra_ns_;
  }

  // Latency of a route that takes `extra_hops` hops beyond the minimal one
  // (a message bumped onto a non-minimal route by the fault model). When the
  // configured per-hop cost is zero (the paper's flat model), a floor cost
  // applies so a detour is never free.
  static constexpr Time kDetourHopFloorNs = 500;
  Time DetourExtraNs(int node_a, int node_b, int extra_hops) const {
    const Time per_hop = hop_extra_ns_ > 0 ? hop_extra_ns_ : kDetourHopFloorNs;
    return RouteExtraNs(node_a, node_b) + static_cast<Time>(extra_hops) * per_hop;
  }

 private:
  int width_;
  int height_;
  Time hop_extra_ns_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_INTERCONNECT_H_
