#include "src/flash/interconnect.h"

#include <cmath>

namespace flash {

Interconnect::Interconnect(const MachineConfig& config)
    : hop_extra_ns_(config.latency.mesh_hop_extra_ns) {
  // Most-square mesh: width = ceil(sqrt(n)), height covers the rest.
  width_ = 1;
  while (width_ * width_ < config.num_nodes) {
    ++width_;
  }
  height_ = (config.num_nodes + width_ - 1) / width_;
}

int Interconnect::HopDistance(int node_a, int node_b) const {
  const int dx = XOf(node_a) - XOf(node_b);
  const int dy = YOf(node_a) - YOf(node_b);
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

}  // namespace flash
