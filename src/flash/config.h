// Machine geometry and latency parameters for the simulated FLASH
// multiprocessor. Defaults reproduce the machine model of paper section 7.2:
// an SGI Challenge-class machine with four 200-MHz MIPS R4000 processors, one
// per node, 32 MB of memory per node, and a 700 ns main-memory access latency.

#ifndef HIVE_SRC_FLASH_CONFIG_H_
#define HIVE_SRC_FLASH_CONFIG_H_

#include <cstdint>

namespace flash {

// Simulated time in nanoseconds.
using Time = int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * 1000;
constexpr Time kSecond = 1000 * 1000 * 1000;

// Latency parameters (paper section 7.2 unless noted).
struct LatencyParams {
  // 200 MHz processor: 5 ns per instruction when not stalled.
  Time cycle_ns = 5;

  // First-level miss that hits in the 1 MB secondary cache.
  Time l2_hit_ns = 50;

  // Secondary cache miss: fixed at the FLASH average miss latency.
  Time memory_miss_ns = 700;

  // Interprocessor interrupt delivery.
  Time ipi_ns = 700;

  // Extra latency per mesh hop for messages. Zero by default: the paper's
  // model charges the flat FLASH average; enable to study distance effects.
  Time mesh_hop_extra_ns = 0;

  // SIPS message: IPI latency plus this much when the receiver accesses the
  // 128-byte payload.
  Time sips_payload_ns = 300;

  // Firewall permission check performed by the coherence controller on a
  // cache-line ownership request. The paper measures the resulting increase in
  // average remote write miss latency at 6.3% (pmake) / 4.4% (ocean); with a
  // 700 ns base miss this corresponds to ~44 ns, plus contention effects.
  Time firewall_check_ns = 44;

  // Cost for the local processor to change a firewall bit vector (uncached
  // writes to the coherence controller).
  Time firewall_grant_ns = 300;

  // Revoking write permission additionally requires making sure all pending
  // valid writebacks from remote nodes have been delivered (paper 4.2 / 7.2;
  // the paper's model omits this extra latency, we charge a small sync cost).
  Time firewall_revoke_ns = 1000;
};

struct MachineConfig {
  int num_nodes = 4;
  int cpus_per_node = 1;
  uint64_t memory_per_node = 32ull * 1024 * 1024;
  uint64_t page_size = 4096;

  // Each node has one disk, one ethernet, one console in the paper's model;
  // only the disk matters for the evaluation.
  int disks_per_node = 1;

  // SIPS receive queues are short hardware structures.
  int sips_queue_depth = 16;

  LatencyParams latency;

  int num_cpus() const { return num_nodes * cpus_per_node; }
  uint64_t pages_per_node() const { return memory_per_node / page_size; }
  uint64_t total_memory() const { return memory_per_node * num_nodes; }
  uint64_t total_pages() const { return total_memory() / page_size; }
};

// Physical address and page frame number in the global address space.
// Node i owns addresses [i * memory_per_node, (i+1) * memory_per_node).
using PhysAddr = uint64_t;
using Pfn = uint64_t;

constexpr PhysAddr kInvalidPhysAddr = ~0ull;

}  // namespace flash

#endif  // HIVE_SRC_FLASH_CONFIG_H_
