// Fault injection (paper section 7.4). Two families:
//
//  - Hardware fail-stop faults: halting a processor and denying all access to
//    the range of memory assigned to it (node failure).
//  - Software faults: corrupting the contents of a kernel data structure of
//    one cell, simulating a kernel bug. Pointer corruption modes match the
//    paper's pathological cases: random physical addresses in the same cell
//    or other cells, one word away from the original address, and pointing
//    back at the data structure itself.
//
// Corruption uses the raw (unchecked) store path: a cell's own bug scribbling
// its own memory is always "permitted" by the firewall. Damage to OTHER cells
// can only happen later, when code dereferences the corrupt data -- and that
// dereference goes through the normal checked paths.

#ifndef HIVE_SRC_FLASH_FAULT_INJECTOR_H_
#define HIVE_SRC_FLASH_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/flash/machine.h"

namespace flash {

enum class PointerCorruptionMode {
  kRandomSameCell,   // Random physical address within the victim's own range.
  kRandomOtherCell,  // Random physical address in another cell's range.
  kOffByOneWord,     // Original value plus one word.
  kSelfPointing,     // Points back at the data structure itself.
};

class FaultInjector {
 public:
  explicit FaultInjector(Machine* machine, uint64_t seed)
      : machine_(machine), rng_(seed) {}

  // Schedules a fail-stop node failure at absolute time `when`.
  void ScheduleNodeFailure(int node, Time when);

  // Immediately corrupts the 8-byte pointer at `addr` according to `mode`.
  // `victim_range_base/size` bound the victim cell's memory (for
  // kRandomSameCell); `other_range_base/size` bound some other cell's memory.
  // Returns the value written.
  uint64_t CorruptPointer(PhysAddr addr, PointerCorruptionMode mode,
                          PhysAddr victim_range_base, uint64_t victim_range_size,
                          PhysAddr other_range_base, uint64_t other_range_size);

  // Overwrites `len` bytes at addr with pseudo-random garbage (raw path).
  void CorruptBytes(PhysAddr addr, uint64_t len);

  base::Rng& rng() { return rng_; }

 private:
  Machine* machine_;
  base::Rng rng_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_FAULT_INJECTOR_H_
