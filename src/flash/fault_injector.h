// Fault injection (paper section 7.4). Two families:
//
//  - Hardware fail-stop faults: halting a processor and denying all access to
//    the range of memory assigned to it (node failure).
//  - Software faults: corrupting the contents of a kernel data structure of
//    one cell, simulating a kernel bug. Pointer corruption modes match the
//    paper's pathological cases: random physical addresses in the same cell
//    or other cells, one word away from the original address, and pointing
//    back at the data structure itself.
//  - Message faults: a seed-driven model of a flaky SIPS substrate (drop,
//    duplicate, delay/reorder, single-byte payload corruption) expressed as
//    time-windowed per-route plans. The paper assumes SIPS is reliable; the
//    model exists to test the layers above it (the reliable RPC transport)
//    against a substrate that breaks that assumption.
//
// Corruption uses the raw (unchecked) store path: a cell's own bug scribbling
// its own memory is always "permitted" by the firewall. Damage to OTHER cells
// can only happen later, when code dereferences the corrupt data -- and that
// dereference goes through the normal checked paths.

#ifndef HIVE_SRC_FLASH_FAULT_INJECTOR_H_
#define HIVE_SRC_FLASH_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/flash/machine.h"

namespace flash {

enum class PointerCorruptionMode {
  kRandomSameCell,   // Random physical address within the victim's own range.
  kRandomOtherCell,  // Random physical address in another cell's range.
  kOffByOneWord,     // Original value plus one word.
  kSelfPointing,     // Points back at the data structure itself.
};

class FaultInjector {
 public:
  explicit FaultInjector(Machine* machine, uint64_t seed)
      : machine_(machine), rng_(seed) {}

  // Schedules a fail-stop node failure at absolute time `when`.
  void ScheduleNodeFailure(int node, Time when);

  // Immediately corrupts the 8-byte pointer at `addr` according to `mode`.
  // `victim_range_base/size` bound the victim cell's memory (for
  // kRandomSameCell); `other_range_base/size` bound some other cell's memory.
  // Returns the value written.
  uint64_t CorruptPointer(PhysAddr addr, PointerCorruptionMode mode,
                          PhysAddr victim_range_base, uint64_t victim_range_size,
                          PhysAddr other_range_base, uint64_t other_range_size);

  // Overwrites `len` bytes at addr with pseudo-random garbage (raw path).
  void CorruptBytes(PhysAddr addr, uint64_t len);

  // Writes one 8-byte word at `addr` (raw path). The rogue-cell fault family
  // uses this for targeted corruption: planting out-of-range or cyclic next
  // pointers in a victim's published chain, or tearing a seqlock block.
  void WriteWord(PhysAddr addr, uint64_t value);

  // Overwrites the 4-byte kernel-heap type tag at `tag_addr` with `bad_tag`
  // (raw path; the caller locates the tag inside the allocation header, this
  // layer knows nothing of heap layout): the careful reference protocol's
  // step-4 check must catch the mismatch on the next remote read.
  void CorruptTypeTag(PhysAddr tag_addr, uint32_t bad_tag);

  base::Rng& rng() { return rng_; }

 private:
  Machine* machine_;
  base::Rng rng_;
};

// ---------------------------------------------------------------------------
// Message-fault model.
// ---------------------------------------------------------------------------

enum class MessageFaultKind {
  kNone,       // Message passes untouched.
  kDrop,       // Message silently vanishes in the mesh.
  kDuplicate,  // Message is delivered twice.
  kDelay,      // Message takes a non-minimal route and arrives late
               // (reordering relative to later traffic on the same route).
  kCorrupt,    // One payload byte is flipped in flight; the per-line
               // checksum makes this detectable at the receiver.
};

const char* MessageFaultKindName(MessageFaultKind kind);

// One time-windowed fault plan. Probabilities are per-mille and are resolved
// with a single RNG roll per message: drop wins first, then duplicate, then
// delay, then corrupt (cumulative thresholds), so the sum must stay <= 1000.
struct MessageFaultPlan {
  Time start = 0;
  Time end = 0;  // Exclusive.
  uint32_t drop_pm = 0;
  uint32_t dup_pm = 0;
  uint32_t delay_pm = 0;
  uint32_t corrupt_pm = 0;
  Time delay_max_ns = 0;  // Upper bound for injected delay.
  int src_node = -1;      // -1 matches any source node.
  int dst_node = -1;      // -1 matches any destination node.
};

struct MessageFaultStats {
  uint64_t sampled = 0;  // Messages that fell inside an active plan window.
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;
};

struct MessageFaultDecision {
  MessageFaultKind kind = MessageFaultKind::kNone;
  Time delay_ns = 0;          // For kDelay.
  uint32_t corrupt_byte = 0;  // For kCorrupt: payload byte index.
  uint8_t corrupt_mask = 0;   // For kCorrupt: non-zero XOR mask.
};

// Deterministic, seed-driven sampler. Draws from the RNG ONLY when a message
// falls inside an active plan window, so enabling the model without plans (or
// outside every window) perturbs nothing.
class MessageFaultModel {
 public:
  explicit MessageFaultModel(uint64_t seed) : rng_(seed) {}

  void AddPlan(const MessageFaultPlan& plan) { plans_.push_back(plan); }
  void ClearPlans() { plans_.clear(); }

  // True if any plan window covers (now, src_node, dst_node).
  bool Active(Time now, int src_node, int dst_node) const;

  // Samples the fate of one message hop.
  MessageFaultDecision Sample(Time now, int src_node, int dst_node);

  const MessageFaultStats& stats() const { return stats_; }

  // Shared jitter source for layers that need deterministic randomness tied
  // to the same scenario seed (e.g. RPC retry backoff jitter).
  base::Rng& rng() { return rng_; }

 private:
  base::Rng rng_;
  std::vector<MessageFaultPlan> plans_;
  MessageFaultStats stats_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_FAULT_INJECTOR_H_
