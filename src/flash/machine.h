// Assembles the simulated FLASH machine: nodes with CPUs, memory, firewall,
// SIPS, and disks, driven by one discrete-event queue.
//
// Execution model: kernel operations run synchronously inside events and
// charge latency; per-CPU `free_at` times model processor occupancy. The model
// trades instruction-level fidelity for robustness while keeping the latency
// parameters of the paper's machine model (section 7.2).

#ifndef HIVE_SRC_FLASH_MACHINE_H_
#define HIVE_SRC_FLASH_MACHINE_H_

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/flash/cache_model.h"
#include "src/flash/config.h"
#include "src/flash/disk.h"
#include "src/flash/event_queue.h"
#include "src/flash/interconnect.h"
#include "src/flash/parallel_exec.h"
#include "src/flash/phys_mem.h"
#include "src/flash/sips.h"

namespace flash {

struct Cpu {
  int id = -1;
  int node = -1;
  bool halted = false;
  // Time at which the CPU finishes its currently scheduled work; used by the
  // scheduler to serialize work on one processor.
  Time free_at = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config, uint64_t seed = 1);

  const MachineConfig& config() const { return config_; }
  EventQueue& events() { return events_; }
  Time Now() const { return events_.Now(); }

  // Enables the parallel simulation core: slice dispatch snaps to `grid_ns`
  // boundaries and safe-tagged events run through the windowed executor with
  // up to `threads` workers. Must be called before any events execute. The
  // grid changes simulated timing deterministically, so it is applied for
  // threads == 1 too: a 1-thread and an N-thread run of the same scenario
  // are byte-identical (the equivalence oracle).
  void EnableParallelSim(int threads, Time grid_ns);

  // Drives events to `deadline` through the parallel executor when enabled,
  // else through the serial queue.
  size_t RunUntil(Time deadline);

  ParallelExecutor* parallel_exec() { return parallel_exec_.get(); }
  // Slice-dispatch grid in ns; 0 when the parallel core is disabled.
  Time slice_grid_ns() const { return slice_grid_ns_; }

  const Interconnect& interconnect() const { return interconnect_; }
  PhysMem& mem() { return mem_; }
  const PhysMem& mem() const { return mem_; }
  Firewall& firewall() { return mem_.firewall(); }
  Sips& sips() { return sips_; }
  CacheModel& cache() { return cache_; }
  base::Rng& rng() { return rng_; }

  Cpu& cpu(int id) { return cpus_[static_cast<size_t>(id)]; }
  const Cpu& cpu(int id) const { return cpus_[static_cast<size_t>(id)]; }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  int NodeOfCpu(int cpu_id) const { return cpu_id / config_.cpus_per_node; }
  int FirstCpuOfNode(int node) const { return node * config_.cpus_per_node; }

  Disk& disk(int node) { return *disks_[static_cast<size_t>(node)]; }

  // --- Hardware fault injection primitives. ---

  // Fail-stop node failure: the processor halts, the node's memory range
  // becomes inaccessible, SIPS messages to/from it vanish.
  void FailNode(int node);

  // Halts a single processor without failing memory (detected only by clock
  // monitoring).
  void HaltCpu(int cpu_id);

  // Memory cutoff used by the cell panic routine (paper table 8.1).
  void CutOffNode(int node);

  // Diagnostics passed: node rebooted and reintegrated.
  void RestoreNode(int node);

  bool NodeDead(int node) const { return node_dead_[static_cast<size_t>(node)]; }

 private:
  MachineConfig config_;
  EventQueue events_;
  Interconnect interconnect_;
  PhysMem mem_;
  Sips sips_;
  CacheModel cache_;
  base::Rng rng_;
  std::vector<Cpu> cpus_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<bool> node_dead_;
  std::unique_ptr<ParallelExecutor> parallel_exec_;
  Time slice_grid_ns_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_MACHINE_H_
