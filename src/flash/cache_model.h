// Latency accounting for the memory hierarchy. We do not simulate cache
// contents; workloads and kernel paths charge misses of a given class and the
// model returns the latency while keeping the counters the section 4.2
// firewall measurement needs.
//
// Classes:
//  - L2 hit: first-level miss that hits the 1 MB secondary cache (50 ns).
//  - local miss: secondary miss satisfied by node-local memory.
//  - remote read miss: secondary read miss to another node's memory.
//  - remote write miss: cache-line ownership request to another node. This is
//    where the coherence controller checks the firewall; enabling checking
//    adds firewall_check_ns (measured by the paper as a 6.3%/4.4% increase in
//    average remote write miss latency under pmake/ocean).

#ifndef HIVE_SRC_FLASH_CACHE_MODEL_H_
#define HIVE_SRC_FLASH_CACHE_MODEL_H_

#include <cstdint>

#include "src/flash/config.h"

namespace flash {

class CacheModel {
 public:
  explicit CacheModel(const LatencyParams& latency) : latency_(latency) {}

  Time L2Hit() {
    ++l2_hits_;
    return latency_.l2_hit_ns;
  }

  Time LocalMiss() {
    ++local_misses_;
    return latency_.memory_miss_ns;
  }

  Time RemoteReadMiss() {
    ++remote_read_misses_;
    return latency_.memory_miss_ns;
  }

  // `base_miss_ns` lets callers model contended misses (e.g. ocean's 3-hop
  // dirty misses are slower than the 700 ns average); pass 0 for the default.
  Time RemoteWriteMiss(bool firewall_checking, Time base_miss_ns = 0) {
    ++remote_write_misses_;
    Time lat = base_miss_ns > 0 ? base_miss_ns : latency_.memory_miss_ns;
    remote_write_base_total_ += lat;
    if (firewall_checking) {
      ++firewall_checked_misses_;
      lat += latency_.firewall_check_ns;
    }
    remote_write_total_ += lat;
    return lat;
  }

  // Counters.
  uint64_t l2_hits() const { return l2_hits_; }
  uint64_t local_misses() const { return local_misses_; }
  uint64_t remote_read_misses() const { return remote_read_misses_; }
  uint64_t remote_write_misses() const { return remote_write_misses_; }
  uint64_t firewall_checked_misses() const { return firewall_checked_misses_; }

  // Average remote write miss latency with and without the firewall check,
  // used by bench/sec42_firewall_overhead.
  double AvgRemoteWriteMissNs() const {
    return remote_write_misses_ == 0
               ? 0.0
               : static_cast<double>(remote_write_total_) /
                     static_cast<double>(remote_write_misses_);
  }
  double AvgRemoteWriteMissBaseNs() const {
    return remote_write_misses_ == 0
               ? 0.0
               : static_cast<double>(remote_write_base_total_) /
                     static_cast<double>(remote_write_misses_);
  }

  void ResetCounters() {
    l2_hits_ = local_misses_ = remote_read_misses_ = remote_write_misses_ = 0;
    firewall_checked_misses_ = 0;
    remote_write_total_ = remote_write_base_total_ = 0;
  }

  const LatencyParams& latency() const { return latency_; }

 private:
  LatencyParams latency_;
  uint64_t l2_hits_ = 0;
  uint64_t local_misses_ = 0;
  uint64_t remote_read_misses_ = 0;
  uint64_t remote_write_misses_ = 0;
  uint64_t firewall_checked_misses_ = 0;
  int64_t remote_write_total_ = 0;
  int64_t remote_write_base_total_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_CACHE_MODEL_H_
