// The simulated hardware trap. This is the single exception type in the
// codebase: it models the bus error a MIPS processor takes when an access
// fails. Under a careful-reference section (hive/careful_ref.h) the trap
// handler converts it to a Status; anywhere else in kernel execution it
// indicates internal corruption and the cell panics (paper section 4.1).

#ifndef HIVE_SRC_FLASH_BUS_ERROR_H_
#define HIVE_SRC_FLASH_BUS_ERROR_H_

#include <exception>

#include "src/flash/config.h"

namespace flash {

enum class BusErrorKind {
  kNodeFailed,      // Target node's memory is gone (hardware fault).
  kMemoryCutoff,    // Target cell panicked and cut off remote access.
  kFirewall,        // Write denied by the firewall bit vector.
  kInvalidAddress,  // Address outside the physical address space.
  kMisaligned,      // Unaligned typed access.
};

class BusError : public std::exception {
 public:
  BusError(BusErrorKind kind, PhysAddr addr) : kind_(kind), addr_(addr) {}

  BusErrorKind kind() const { return kind_; }
  PhysAddr addr() const { return addr_; }

  const char* what() const noexcept override {
    switch (kind_) {
      case BusErrorKind::kNodeFailed:
        return "bus error: node failed";
      case BusErrorKind::kMemoryCutoff:
        return "bus error: memory cutoff";
      case BusErrorKind::kFirewall:
        return "bus error: firewall write denied";
      case BusErrorKind::kInvalidAddress:
        return "bus error: invalid physical address";
      case BusErrorKind::kMisaligned:
        return "bus error: misaligned access";
    }
    return "bus error";
  }

 private:
  BusErrorKind kind_;
  PhysAddr addr_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_BUS_ERROR_H_
