// Conservative parallel discrete-event execution over the per-cell partition
// of the event queue (ISSUE: parallelize the simulation core).
//
// The classic conservative-DES bound says a partition may advance to the
// minimum timestamp at which any other partition could affect it (its
// lookahead: here, the minimum cross-cell latency ipi_ns + sips_payload_ns).
// This executor uses a stronger static guarantee instead: events tagged
// `safe` promise to touch only their own cell's state and to schedule only
// same-cell safe events below the window horizon (CHECK-enforced, see
// EventQueue::WorkerSchedule), so safe events of *different* cells are
// causally independent no matter how far apart their timestamps are. The
// window may therefore extend to the first unsafe event or the next slice
// grid boundary, whichever is earlier -- far beyond the microsecond-scale
// classic lookahead, which matters because compute slices are milliseconds
// apart.
//
// Execution of one window:
//   1. Pop every live event with when < horizon off the heap in (when, seq)
//      order; stop early at the first unsafe event (it becomes the next
//      serial step). The popped events, grouped by cell, form bundles.
//   2. Run bundles concurrently, one worker per bundle. Each worker records
//      every ScheduleAt its events issue (EventQueue::ExecRecord) and runs
//      same-cell sub-horizon creations itself, in the (when, creation order)
//      sequence a serial run would use.
//   3. Barrier, then replay: walk the executed records in global (when, seq)
//      order -- a priority-queue simulation of the serial loop -- assigning
//      sequence numbers to recorded schedules in the exact order a
//      single-threaded run would have assigned them, and push the deferred
//      ones onto the heap.
//
// Step 3 is why fingerprints survive: sequence numbers are the only
// tie-break in the heap order, and they end up byte-identical to a serial
// run's, so every later pop -- and therefore every simulated outcome -- is
// too. A 1-thread executor runs the same three phases on one thread, making
// `--sim-threads=1` vs `--sim-threads=N` equality a meaningful oracle.

#ifndef HIVE_SRC_FLASH_PARALLEL_EXEC_H_
#define HIVE_SRC_FLASH_PARALLEL_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/sim_profile.h"
#include "src/flash/event_queue.h"

namespace flash {

class ParallelExecutor {
 public:
  // `threads` >= 1 caps concurrent bundle workers; `grid_ns` > 0 is the
  // slice-dispatch grid that bounds window width (0 disables windows: every
  // event runs on the classic serial path).
  ParallelExecutor(EventQueue* queue, int threads, Time grid_ns);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  // Runs events with timestamp <= deadline; leaves Now() == deadline. The
  // windowed equivalent of EventQueue::RunUntil.
  size_t RunUntil(Time deadline);

  // Runs one block -- a single unsafe event, or one full parallel window --
  // and adds the events executed to *ran. Returns false (running nothing) if
  // no event is due at or before `deadline`. Callers that poll a predicate
  // between events (HiveSystem::RunUntilDone) poll at block granularity.
  bool RunBlock(Time deadline, size_t* ran);

  int threads() const { return threads_; }
  Time grid_ns() const { return grid_ns_; }

  // Window statistics (bench stage + DESIGN numbers).
  uint64_t windows_run() const { return windows_run_; }
  uint64_t window_events() const { return window_events_; }
  uint64_t serial_events() const { return serial_events_; }
  uint64_t max_window_cells() const { return max_window_cells_; }

 private:
  // One popped pre-window event, fn already moved out of its slot.
  struct PreEvent {
    Time when;
    uint64_t seq;
    EventFn fn;
  };

  // All of one cell's events for the current window, plus the worker context
  // that records what they schedule.
  struct Bundle {
    int cell = EventQueue::kUntaggedCell;
    std::vector<PreEvent> events;
    EventQueue::WorkerContext ctx;
    base::SimProfile profile;
  };

  void ExecuteBundle(Bundle* bundle);
  void WorkerMain();
  // Runs bundles [0, count) with the pool; returns when all are done.
  void DispatchBundles(size_t count);
  void ReplayWindow(size_t bundle_count);

  EventQueue* queue_;
  const int threads_;
  const Time grid_ns_;

  // Reused window storage (no per-window allocation in steady state).
  std::vector<Bundle> bundles_;
  Time window_horizon_ = 0;
  bool bundles_use_profile_ = false;

  // Worker pool: spawned lazily at the first multi-bundle window.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t job_generation_ = 0;
  size_t job_bundle_count_ = 0;
  size_t bundles_done_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> next_bundle_{0};

  uint64_t windows_run_ = 0;
  uint64_t window_events_ = 0;
  uint64_t serial_events_ = 0;
  uint64_t max_window_cells_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_PARALLEL_EXEC_H_
