#include "src/flash/phys_mem.h"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define HIVE_PHYS_MEM_MMAP 1
#endif

#include "src/base/log.h"

namespace flash {

ZeroFillImage::ZeroFillImage(uint64_t size) : size_(size) {
#ifdef HIVE_PHYS_MEM_MMAP
  void* mem = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem != MAP_FAILED) {
    data_ = static_cast<uint8_t*>(mem);
    mapped_ = true;
    return;
  }
#endif
  fallback_.assign(size_, 0);
  data_ = fallback_.data();
}

ZeroFillImage::~ZeroFillImage() {
#ifdef HIVE_PHYS_MEM_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
  }
#endif
}

void ZeroFillImage::ZeroRange(uint64_t offset, uint64_t len) {
  CHECK(offset <= size_ && len <= size_ - offset);
#ifdef HIVE_PHYS_MEM_MMAP
  if (mapped_) {
    // Drop whole host pages back to demand-zero; memset only the ragged edges.
    const uint64_t kHostPage = 4096;
    const uint64_t first_page = (offset + kHostPage - 1) / kHostPage * kHostPage;
    const uint64_t last_page = (offset + len) / kHostPage * kHostPage;
    if (first_page < last_page &&
        ::madvise(data_ + first_page, last_page - first_page, MADV_DONTNEED) == 0) {
      std::memset(data_ + offset, 0, first_page - offset);
      std::memset(data_ + last_page, 0, offset + len - last_page);
      return;
    }
  }
#endif
  std::memset(data_ + offset, 0, len);
}

PhysMem::PhysMem(const MachineConfig& config)
    : memory_per_node_(config.memory_per_node),
      page_size_(config.page_size),
      total_size_(config.total_memory()),
      cpus_per_node_(config.cpus_per_node),
      firewall_(config),
      bytes_(config.total_memory()),
      node_failed_(config.num_nodes, false),
      node_cutoff_(config.num_nodes, false) {}

void PhysMem::CheckAccessible(PhysAddr addr, uint64_t len, int accessor_node) const {
  if (!ValidRange(addr, len)) {
    throw BusError(BusErrorKind::kInvalidAddress, addr);
  }
  if (len == 0) {
    return;
  }
  const int first_node = NodeOfAddr(addr);
  const int last_node = NodeOfAddr(addr + len - 1);
  for (int node = first_node; node <= last_node; ++node) {
    if (node_failed_[node]) {
      throw BusError(BusErrorKind::kNodeFailed, addr);
    }
    if (node_cutoff_[node] && node != accessor_node) {
      throw BusError(BusErrorKind::kMemoryCutoff, addr);
    }
  }
}

void PhysMem::Read(int cpu, PhysAddr addr, std::span<uint8_t> out) const {
  CheckAccessible(addr, out.size(), cpu / cpus_per_node_);
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void PhysMem::Write(int cpu, PhysAddr addr, std::span<const uint8_t> data) {
  CheckAccessible(addr, data.size(), cpu / cpus_per_node_);
  if (firewall_.checking_enabled() && !data.empty()) {
    const Pfn first = PfnOfAddr(addr);
    const Pfn last = PfnOfAddr(addr + data.size() - 1);
    for (Pfn pfn = first; pfn <= last; ++pfn) {
      firewall_.CountCheck();
      if (!firewall_.MayWrite(pfn, cpu)) {
        firewall_.CountDenied();
        throw BusError(BusErrorKind::kFirewall, AddrOfPfn(pfn));
      }
    }
  }
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void PhysMem::DmaWrite(int node, PhysAddr addr, std::span<const uint8_t> data) {
  // DMA writes are checked as if they were writes from the processor on that
  // node (paper section 4.2).
  Write(node * cpus_per_node_, addr, data);
}

void PhysMem::DmaRead(int node, PhysAddr addr, std::span<uint8_t> out) const {
  Read(node * cpus_per_node_, addr, out);
}

void PhysMem::RestoreNode(int node) {
  node_failed_[node] = false;
  node_cutoff_[node] = false;
  // Diagnostics + reboot leave the node's memory zeroed.
  bytes_.ZeroRange(static_cast<uint64_t>(node) * memory_per_node_, memory_per_node_);
}

void PhysMem::RawWrite(PhysAddr addr, std::span<const uint8_t> data) {
  CHECK(ValidRange(addr, data.size()));
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void PhysMem::RawRead(PhysAddr addr, std::span<uint8_t> out) const {
  CHECK(ValidRange(addr, out.size()));
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

}  // namespace flash
