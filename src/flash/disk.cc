#include "src/flash/disk.h"

#include <cmath>
#include <cstdlib>

namespace flash {

Time Disk::SeekTime(uint64_t distance_cylinders) {
  if (distance_cylinders == 0) {
    return 0;
  }
  double ms;
  if (distance_cylinders <= 383) {
    ms = 3.24 + 0.400 * std::sqrt(static_cast<double>(distance_cylinders));
  } else {
    ms = 8.00 + 0.008 * static_cast<double>(distance_cylinders);
  }
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

Time Disk::AccessTime(uint64_t offset, uint64_t nbytes) {
  ++accesses_;
  const uint64_t target_cylinder = CylinderOfOffset(offset) % kCylinders;
  const uint64_t distance = target_cylinder > head_cylinder_
                                ? target_cylinder - head_cylinder_
                                : head_cylinder_ - target_cylinder;

  Time latency = SeekTime(distance);
  if (offset == next_sequential_offset_ && distance == 0) {
    // Back-to-back sequential transfer: no rotational delay.
    ++sequential_accesses_;
  } else {
    // Random rotational positioning, uniform over one revolution.
    latency += static_cast<Time>(rng_.Below(static_cast<uint64_t>(kRevolutionNs)));
  }

  // Media transfer: one track (72 * 512 bytes) per revolution.
  constexpr uint64_t kTrackBytes = kSectorsPerTrack * kSectorBytes;
  latency += static_cast<Time>(static_cast<double>(nbytes) / static_cast<double>(kTrackBytes) *
                               static_cast<double>(kRevolutionNs));

  head_cylinder_ = target_cylinder;
  next_sequential_offset_ = offset + nbytes;
  return latency;
}

}  // namespace flash
