#include "src/flash/event_queue.h"

#include "src/base/log.h"

namespace flash {


uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoFree) {
    const uint32_t slot = free_head_;
    free_head_ = SlotAt(slot).next_free;
    return slot;
  }
  if ((slot_count_ >> kChunkShift) == slot_chunks_.size()) {
    // Default-init, not make_unique: value-initialization would memset every
    // slot's inline callback buffer (~50 KB per chunk) before the
    // constructors run. The Slot constructor initializes all live fields.
    slot_chunks_.emplace_back(new Slot[kChunkSlots]);
  }
  return slot_count_++;
}

void EventQueue::ReleaseSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.fn.Reset();
  if (++slot.generation == 0) {
    slot.generation = 1;  // Keep EventIds distinct from kInvalidEventId.
  }
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId EventQueue::ScheduleAtTagged(Time when, int cell, bool safe, EventFn fn) {
  if (WorkerSlot() != nullptr) {
    return WorkerSchedule(when, cell, safe, std::move(fn));
  }
  CHECK_GE(when, now_) << "cannot schedule an event in the past";
  const uint32_t index = AcquireSlot();
  Slot& slot = SlotAt(index);
  slot.fn = std::move(fn);
  slot.cell = cell;
  slot.safe = safe;
  heap_.push(HeapEntry{when, next_seq_, index, slot.generation});
  ++next_seq_;
  ++live_count_;
  return MakeId(index, slot.generation);
}

EventId EventQueue::WorkerSchedule(Time when, int cell, bool safe, EventFn fn) {
  WorkerContext& ctx = *WorkerSlot();
  CHECK_GE(when, ctx.local_now) << "cannot schedule an event in the past";
  // A safe event may create work below the window horizon only for its own
  // cell; everything else must land at or beyond the horizon, or the merged
  // order would diverge from a single-threaded run (lint R10, parallel form).
  const bool local = safe && cell == ctx.cell && when < ctx.horizon;
  if (!local) {
    CHECK_GE(when, ctx.horizon)
        << "safe event scheduled unsafe/cross-cell work inside the window";
  }
  uint32_t index;
  uint32_t generation;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    index = AcquireSlot();
    Slot& slot = SlotAt(index);
    slot.fn = std::move(fn);
    slot.cell = cell;
    slot.safe = safe;
    generation = slot.generation;
  }
  ExecRecord& record = ctx.records[ctx.current_record];
  record.schedules.push_back(DeferredSchedule{when, index, generation});
  if (local) {
    record.schedules.back().ran_locally = true;  // Committed to run below.
    ctx.pending_local.push(WorkerContext::PendingLocal{
        when, ctx.next_local_order++, ctx.current_record,
        static_cast<uint32_t>(record.schedules.size() - 1)});
  }
  return MakeId(index, generation);
}

bool EventQueue::Cancel(EventId id) {
  if (WorkerSlot() != nullptr) {
    return WorkerCancel(id);
  }
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t index = static_cast<uint32_t>(id >> 32) - 1;
  const uint32_t generation = static_cast<uint32_t>(id);
  if (index >= slot_count_ || SlotAt(index).generation != generation) {
    return false;  // Already ran, already cancelled, or never scheduled.
  }
  // Destroy the callback now and recycle the slot; the heap entry left behind
  // is a tombstone (its generation no longer matches) skipped at pop time.
  ReleaseSlot(index);
  --live_count_;
  return true;
}

bool EventQueue::WorkerCancel(EventId id) {
  WorkerContext& ctx = *WorkerSlot();
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t index = static_cast<uint32_t>(id >> 32) - 1;
  const uint32_t generation = static_cast<uint32_t>(id);
  // Only events this worker created inside the current window can be
  // cancelled from a safe context: cancelling a pre-window event would race
  // the other workers and diverge from the serial order.
  for (ExecRecord& record : ctx.records) {
    for (DeferredSchedule& sched : record.schedules) {
      if (sched.slot == index && sched.generation == generation &&
          !sched.cancelled) {
        if (sched.done) {
          return false;  // Serial parity: it already ran.
        }
        sched.cancelled = true;
        sched.ran_locally = false;
        std::lock_guard<std::mutex> lock(pool_mutex_);
        if (SlotAt(index).generation == generation) {
          ReleaseSlot(index);
        }
        return true;
      }
    }
  }
  const bool stale =
      index >= slot_count_ || SlotAt(index).generation != generation;
  CHECK(stale) << "safe event cancelled a pre-window event inside a parallel "
                  "window; tag the canceller unsafe";
  return false;
}

void EventQueue::DropTombstones() {
  while (!heap_.empty() && EntryStale(heap_.top())) {
    heap_.pop();
  }
}

void EventQueue::RunEntry(const HeapEntry& entry) {
  now_ = entry.when;
  ++total_run_;
  --live_count_;
  // Move the callback out before invoking: the callback may schedule new
  // events or cancel others, so no slot reference may be held across the
  // call (chunks are stable, but the slot itself gets recycled).
  EventFn fn = std::move(SlotAt(entry.slot).fn);
  ReleaseSlot(entry.slot);
  fn();
}

size_t EventQueue::Run() {
  size_t count = 0;
  for (;;) {
    DropTombstones();
    if (heap_.empty()) {
      return count;
    }
    const HeapEntry entry = heap_.top();
    heap_.pop();
    RunEntry(entry);
    ++count;
  }
}

size_t EventQueue::RunUntil(Time deadline) {
  size_t count = 0;
  for (;;) {
    DropTombstones();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    const HeapEntry entry = heap_.top();
    heap_.pop();
    RunEntry(entry);
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

bool EventQueue::Step() {
  DropTombstones();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry entry = heap_.top();
  heap_.pop();
  RunEntry(entry);
  return true;
}

}  // namespace flash
