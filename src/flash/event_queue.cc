#include "src/flash/event_queue.h"

#include "src/base/log.h"

namespace flash {

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoFree) {
    const uint32_t slot = free_head_;
    free_head_ = SlotAt(slot).next_free;
    return slot;
  }
  if ((slot_count_ >> kChunkShift) == slot_chunks_.size()) {
    // Default-init, not make_unique: value-initialization would memset every
    // slot's inline callback buffer (~50 KB per chunk) before the
    // constructors run. The Slot constructor initializes all live fields.
    slot_chunks_.emplace_back(new Slot[kChunkSlots]);
  }
  return slot_count_++;
}

void EventQueue::ReleaseSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.fn.Reset();
  if (++slot.generation == 0) {
    slot.generation = 1;  // Keep EventIds distinct from kInvalidEventId.
  }
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId EventQueue::ScheduleAt(Time when, EventFn fn) {
  CHECK_GE(when, now_) << "cannot schedule an event in the past";
  const uint32_t index = AcquireSlot();
  Slot& slot = SlotAt(index);
  slot.fn = std::move(fn);
  heap_.push(HeapEntry{when, next_seq_, index, slot.generation});
  ++next_seq_;
  ++live_count_;
  return MakeId(index, slot.generation);
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t index = static_cast<uint32_t>(id >> 32) - 1;
  const uint32_t generation = static_cast<uint32_t>(id);
  if (index >= slot_count_ || SlotAt(index).generation != generation) {
    return false;  // Already ran, already cancelled, or never scheduled.
  }
  // Destroy the callback now and recycle the slot; the heap entry left behind
  // is a tombstone (its generation no longer matches) skipped at pop time.
  ReleaseSlot(index);
  --live_count_;
  return true;
}

void EventQueue::DropTombstones() {
  while (!heap_.empty() && EntryStale(heap_.top())) {
    heap_.pop();
  }
}

void EventQueue::RunEntry(const HeapEntry& entry) {
  now_ = entry.when;
  ++total_run_;
  --live_count_;
  // Move the callback out before invoking: the callback may schedule new
  // events or cancel others, so no slot reference may be held across the
  // call (chunks are stable, but the slot itself gets recycled).
  EventFn fn = std::move(SlotAt(entry.slot).fn);
  ReleaseSlot(entry.slot);
  fn();
}

size_t EventQueue::Run() {
  size_t count = 0;
  for (;;) {
    DropTombstones();
    if (heap_.empty()) {
      return count;
    }
    const HeapEntry entry = heap_.top();
    heap_.pop();
    RunEntry(entry);
    ++count;
  }
}

size_t EventQueue::RunUntil(Time deadline) {
  size_t count = 0;
  for (;;) {
    DropTombstones();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    const HeapEntry entry = heap_.top();
    heap_.pop();
    RunEntry(entry);
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

bool EventQueue::Step() {
  DropTombstones();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry entry = heap_.top();
  heap_.pop();
  RunEntry(entry);
  return true;
}

}  // namespace flash
