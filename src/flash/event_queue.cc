#include "src/flash/event_queue.h"

#include "src/base/log.h"

namespace flash {

EventId EventQueue::ScheduleAt(Time when, std::function<void()> fn) {
  CHECK_GE(when, now_) << "cannot schedule an event in the past";
  const EventId id = next_seq_ + 1;  // ids are distinct from kInvalidEventId.
  heap_.push(Event{when, next_seq_, id, std::move(fn)});
  ++next_seq_;
  ++live_count_;
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  // We cannot remove from the heap; mark the id dead and skip it at pop time.
  if (pending_ids_.erase(id) == 0) {
    return false;  // Already ran or already cancelled.
  }
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::RunEvent(Event event) {
  now_ = event.when;
  --live_count_;
  pending_ids_.erase(event.id);
  event.fn();
}

size_t EventQueue::Run() {
  size_t count = 0;
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    if (cancelled_.erase(event.id) > 0) {
      continue;
    }
    RunEvent(std::move(event));
    ++count;
  }
  return count;
}

size_t EventQueue::RunUntil(Time deadline) {
  size_t count = 0;
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Event event = heap_.top();
    heap_.pop();
    if (cancelled_.erase(event.id) > 0) {
      continue;
    }
    RunEvent(std::move(event));
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    if (cancelled_.erase(event.id) > 0) {
      continue;
    }
    RunEvent(std::move(event));
    return true;
  }
  return false;
}

}  // namespace flash
