// Discrete-event simulation core: a time-ordered queue of callbacks with
// deterministic tie-breaking (FIFO among equal timestamps).
//
// This is the innermost loop of every experiment in the repo (a nightly
// campaign sweep executes tens of millions of events), so the implementation
// avoids per-event heap churn entirely:
//
//  - Callbacks are stored in EventFn, a move-only callable with a large
//    small-buffer optimization (kInlineBytes covers every callback in the
//    tree, including SIPS delivery closures that carry a full cache line);
//    only oversized callables fall back to one heap allocation.
//  - Event state lives in fixed-size slot chunks recycled through an
//    intrusive free list; the pool grows to the high-watermark of pending
//    events and chunks never move, so growth relocates nothing.
//  - The priority queue orders 24-byte POD entries (when, seq, slot ref), not
//    the callbacks themselves, so heap sifting moves no closures.
//  - Cancellation bumps the slot's generation and destroys the callback
//    immediately; the stale heap entry becomes a tombstone skipped at pop
//    time (no cancellation hash sets on the schedule/run path).
//
// Determinism: events with equal timestamps run in schedule order (a strictly
// increasing sequence number breaks ties), exactly as the original
// priority_queue implementation did. Campaign fingerprints depend on this.

#ifndef HIVE_SRC_FLASH_EVENT_QUEUE_H_
#define HIVE_SRC_FLASH_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/flash/config.h"

namespace flash {

// Handle used to cancel a pending event.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// Move-only callable with a small-buffer optimization sized for the
// simulator's callbacks. Unlike std::function it never requires
// copy-constructibility and keeps captures up to kInlineBytes in place.
class EventFn {
 public:
  // Large enough for the biggest hot-path closure in the tree (SIPS delivery
  // captures a 128-byte cache line plus headers).
  static constexpr size_t kInlineBytes = 192;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper.
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      new (storage_) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct dst's storage from src's and destroy src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  struct InlineOps {
    static D* Get(void* storage) { return std::launder(reinterpret_cast<D*>(storage)); }
    static void Invoke(void* storage) { (*Get(storage))(); }
    static void Relocate(void* dst, void* src) {
      D* from = Get(src);
      new (dst) D(std::move(*from));
      from->~D();
    }
    static void Destroy(void* storage) { Get(storage)->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* Get(void* storage) { return *reinterpret_cast<D**>(storage); }
    static void Invoke(void* storage) { (*Get(storage))(); }
    static void Relocate(void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); }
    static void Destroy(void* storage) { delete Get(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time Now() const { return now_; }

  // Schedules fn at absolute time `when` (>= Now()).
  EventId ScheduleAt(Time when, EventFn fn);

  // Schedules fn at Now() + delay.
  EventId ScheduleAfter(Time delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  // The callback is destroyed immediately; its slot is recycled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  size_t Run();

  // Runs events with timestamp <= deadline; leaves Now() == deadline (unless
  // already beyond it). Returns the number of events run.
  size_t RunUntil(Time deadline);

  // Runs at most one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

  // Total events executed over the queue's lifetime (throughput accounting).
  uint64_t total_run() const { return total_run_; }

  // Pool introspection (tests): slots ever allocated == high-watermark of
  // simultaneously pending events (rounded up to a chunk), not total events
  // scheduled.
  size_t pool_slots() const { return slot_count_; }

 private:
  // A pooled event slot. `generation` is bumped every time the slot is
  // released (fire or cancel); a heap entry or EventId whose generation no
  // longer matches is stale.
  struct Slot {
    EventFn fn;
    uint32_t generation = 1;
    uint32_t next_free = kNoFree;
  };

  // What the priority queue orders: a POD reference into the slot pool.
  struct HeapEntry {
    Time when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    uint32_t slot;
    uint32_t generation;

    bool operator>(const HeapEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  static constexpr uint32_t kNoFree = 0xFFFFFFFFu;
  // Slots are allocated in fixed chunks that never move: growing the pool
  // relocates nothing (a vector<Slot> would move every ~200-byte slot on
  // each reallocation, which dominated short-lived queues).
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSlots = 1u << kChunkShift;

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  Slot& SlotAt(uint32_t index) {
    return slot_chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }
  const Slot& SlotAt(uint32_t index) const {
    return slot_chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);
  bool EntryStale(const HeapEntry& entry) const {
    return SlotAt(entry.slot).generation != entry.generation;
  }
  // Pops cancelled tombstones off the heap top; the heap is then either empty
  // or topped by a live event.
  void DropTombstones();
  void RunEntry(const HeapEntry& entry);

  Time now_ = 0;
  uint64_t total_run_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  uint32_t slot_count_ = 0;  // Slots carved out of the chunks so far.
  uint32_t free_head_ = kNoFree;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_EVENT_QUEUE_H_
