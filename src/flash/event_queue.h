// Discrete-event simulation core: a time-ordered queue of callbacks with
// deterministic tie-breaking (FIFO among equal timestamps).

#ifndef HIVE_SRC_FLASH_EVENT_QUEUE_H_
#define HIVE_SRC_FLASH_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/flash/config.h"

namespace flash {

// Handle used to cancel a pending event.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time Now() const { return now_; }

  // Schedules fn at absolute time `when` (>= Now()).
  EventId ScheduleAt(Time when, std::function<void()> fn);

  // Schedules fn at Now() + delay.
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  size_t Run();

  // Runs events with timestamp <= deadline; leaves Now() == deadline (unless
  // already beyond it). Returns the number of events run.
  size_t RunUntil(Time deadline);

  // Runs at most one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    EventId id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void RunEvent(Event event);

  Time now_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_ids_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_EVENT_QUEUE_H_
