// Discrete-event simulation core: a time-ordered queue of callbacks with
// deterministic tie-breaking (FIFO among equal timestamps).
//
// This is the innermost loop of every experiment in the repo (a nightly
// campaign sweep executes tens of millions of events), so the implementation
// avoids per-event heap churn entirely:
//
//  - Callbacks are stored in EventFn, a move-only callable with a large
//    small-buffer optimization (kInlineBytes covers every callback in the
//    tree, including SIPS delivery closures that carry a full cache line);
//    only oversized callables fall back to one heap allocation.
//  - Event state lives in fixed-size slot chunks recycled through an
//    intrusive free list; the pool grows to the high-watermark of pending
//    events and chunks never move, so growth relocates nothing.
//  - The priority queue orders 24-byte POD entries (when, seq, slot ref), not
//    the callbacks themselves, so heap sifting moves no closures.
//  - Cancellation bumps the slot's generation and destroys the callback
//    immediately; the stale heap entry becomes a tombstone skipped at pop
//    time (no cancellation hash sets on the schedule/run path).
//
// Determinism: events with equal timestamps run in schedule order (a strictly
// increasing sequence number breaks ties), exactly as the original
// priority_queue implementation did. Campaign fingerprints depend on this.
//
// Parallel windows (ParallelExecutor, parallel_exec.h): events may carry a
// (cell, safe) tag. A safe event promises to touch only its own cell's state
// and to schedule only (a) safe same-cell events at any t >= now, or
// (b) events at or beyond the executor's window horizon. The executor runs
// consecutive safe events of different cells concurrently and then replays
// their ScheduleAt calls in serial order, so sequence numbers -- and thus
// every downstream tie-break and campaign fingerprint -- are byte-identical
// to a single-threaded run. Untagged events are unsafe and always serial.

#ifndef HIVE_SRC_FLASH_EVENT_QUEUE_H_
#define HIVE_SRC_FLASH_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/flash/config.h"

namespace flash {

// Handle used to cancel a pending event.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// Move-only callable with a small-buffer optimization sized for the
// simulator's callbacks. Unlike std::function it never requires
// copy-constructibility and keeps captures up to kInlineBytes in place.
class EventFn {
 public:
  // Large enough for the biggest hot-path closure in the tree (SIPS delivery
  // captures a 128-byte cache line plus headers).
  static constexpr size_t kInlineBytes = 192;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper.
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      new (storage_) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct dst's storage from src's and destroy src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  struct InlineOps {
    static D* Get(void* storage) { return std::launder(reinterpret_cast<D*>(storage)); }
    static void Invoke(void* storage) { (*Get(storage))(); }
    static void Relocate(void* dst, void* src) {
      D* from = Get(src);
      new (dst) D(std::move(*from));
      from->~D();
    }
    static void Destroy(void* storage) { Get(storage)->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* Get(void* storage) { return *reinterpret_cast<D**>(storage); }
    static void Invoke(void* storage) { (*Get(storage))(); }
    static void Relocate(void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); }
    static void Destroy(void* storage) { delete Get(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  // Cell tag for events that are not attributable to one cell (fault
  // injection, interconnect, campaign drivers). Untagged events are unsafe.
  static constexpr int kUntaggedCell = -1;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Inside a parallel window a worker sees its own event's timestamp, not the
  // global clock (which is only advanced at window barriers).
  Time Now() const {
    const WorkerContext* ctx = WorkerSlot();
    return ctx != nullptr ? ctx->local_now : now_;
  }

  // True on a thread currently executing a safe event inside a parallel
  // window. Cross-cell subsystems (SIPS send, alert handling, RPC dispatch)
  // CHECK this is false: a safe-tagged event reaching them is a tagging bug
  // that must fail loudly, not corrupt the deterministic merge.
  static bool OnWorkerThread() { return WorkerSlot() != nullptr; }

  // Schedules fn at absolute time `when` (>= Now()). Untagged: the event is
  // unsafe (always executed serially by the parallel executor).
  EventId ScheduleAt(Time when, EventFn fn) {
    return ScheduleAtTagged(when, kUntaggedCell, /*safe=*/false, std::move(fn));
  }

  // Schedules a tagged event. `safe` asserts the cell-locality contract in
  // the header comment; violations are CHECK failures inside parallel
  // windows, not silent divergence.
  EventId ScheduleAtTagged(Time when, int cell, bool safe, EventFn fn);

  // Schedules fn at Now() + delay.
  EventId ScheduleAfter(Time delay, EventFn fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  // The callback is destroyed immediately; its slot is recycled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  size_t Run();

  // Runs events with timestamp <= deadline; leaves Now() == deadline (unless
  // already beyond it). Returns the number of events run.
  size_t RunUntil(Time deadline);

  // Runs at most one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

  // Total events executed over the queue's lifetime (throughput accounting).
  uint64_t total_run() const { return total_run_; }

  // Pool introspection (tests): slots ever allocated == high-watermark of
  // simultaneously pending events (rounded up to a chunk), not total events
  // scheduled.
  size_t pool_slots() const { return slot_count_; }

 private:
  friend class ParallelExecutor;

  // A pooled event slot. `generation` is bumped every time the slot is
  // released (fire or cancel); a heap entry or EventId whose generation no
  // longer matches is stale.
  struct Slot {
    EventFn fn;
    uint32_t generation = 1;
    uint32_t next_free = kNoFree;
    int32_t cell = kUntaggedCell;
    bool safe = false;
  };

  // --- Parallel-window support (driven by ParallelExecutor). ---

  // One ScheduleAt issued from inside a parallel window. The sequence number
  // is NOT assigned here: the executor replays these records in serial
  // execution order at the window barrier and assigns sequence numbers then,
  // reproducing exactly the numbering a single-threaded run would produce.
  struct DeferredSchedule {
    Time when = 0;
    uint32_t slot = 0;
    uint32_t generation = 0;
    // Executed inside this window by the scheduling worker (safe, same cell,
    // when < horizon); its record index links the replay to its own children.
    bool ran_locally = false;
    bool done = false;            // ran_locally creation that already ran.
    bool cancelled = false;       // Cancelled before it could run.
    uint32_t child_record = 0;    // Valid when ran_locally.
  };

  // Everything one executed event did that the barrier must replay.
  struct ExecRecord {
    Time when = 0;
    uint64_t seq = 0;        // Real seq for pre-window events; assigned at
                             // replay for events created inside the window.
    bool from_heap = false;  // Popped from the global heap (has a real seq).
    std::vector<DeferredSchedule> schedules;
  };

  // Per-worker execution context, installed thread-local while a worker runs
  // its cell's bundle of window events.
  struct WorkerContext {
    int cell = kUntaggedCell;
    Time local_now = 0;
    Time horizon = 0;           // Events at >= horizon are deferred.
    EventQueue* queue = nullptr;
    std::vector<ExecRecord> records;
    uint32_t current_record = 0;
    uint64_t executed = 0;
    // In-window creations pending local execution: (when, creation order,
    // record index of creator, schedule index within it).
    struct PendingLocal {
      Time when;
      uint64_t order;
      uint32_t record;
      uint32_t schedule;
      bool operator>(const PendingLocal& other) const {
        if (when != other.when) {
          return when > other.when;
        }
        return order > other.order;
      }
    };
    std::priority_queue<PendingLocal, std::vector<PendingLocal>, std::greater<>>
        pending_local;
    uint64_t next_local_order = 0;
  };

  // Per-thread worker context, null outside parallel windows. A function-local
  // thread_local (rather than an extern TLS member) so every TU reaches it
  // through the same guaranteed-initialized inline accessor.
  static WorkerContext*& WorkerSlot() {
    static thread_local WorkerContext* slot = nullptr;
    return slot;
  }

  // Worker-side halves of ScheduleAtTagged / Cancel (event_queue.cc).
  EventId WorkerSchedule(Time when, int cell, bool safe, EventFn fn);
  bool WorkerCancel(EventId id);

  // What the priority queue orders: a POD reference into the slot pool.
  struct HeapEntry {
    Time when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    uint32_t slot;
    uint32_t generation;

    bool operator>(const HeapEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  static constexpr uint32_t kNoFree = 0xFFFFFFFFu;
  // Slots are allocated in fixed chunks that never move: growing the pool
  // relocates nothing (a vector<Slot> would move every ~200-byte slot on
  // each reallocation, which dominated short-lived queues).
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSlots = 1u << kChunkShift;

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  Slot& SlotAt(uint32_t index) {
    return slot_chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }
  const Slot& SlotAt(uint32_t index) const {
    return slot_chunks_[index >> kChunkShift][index & (kChunkSlots - 1)];
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);
  bool EntryStale(const HeapEntry& entry) const {
    return SlotAt(entry.slot).generation != entry.generation;
  }
  // Pops cancelled tombstones off the heap top; the heap is then either empty
  // or topped by a live event.
  void DropTombstones();
  void RunEntry(const HeapEntry& entry);

  Time now_ = 0;
  uint64_t total_run_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  uint32_t slot_count_ = 0;  // Slots carved out of the chunks so far.
  uint32_t free_head_ = kNoFree;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  // Guards the slot pool (chunks vector, free list) during parallel windows;
  // uncontended no-op cost on the serial path.
  std::mutex pool_mutex_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_EVENT_QUEUE_H_
