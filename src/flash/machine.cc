#include "src/flash/machine.h"

#include "src/base/log.h"

namespace flash {

Machine::Machine(const MachineConfig& config, uint64_t seed)
    : config_(config),
      interconnect_(config),
      mem_(config),
      sips_(&events_, config, &interconnect_),
      cache_(config.latency),
      rng_(seed),
      node_dead_(config.num_nodes, false) {
  cpus_.resize(static_cast<size_t>(config.num_cpus()));
  for (int i = 0; i < config.num_cpus(); ++i) {
    cpus_[static_cast<size_t>(i)].id = i;
    cpus_[static_cast<size_t>(i)].node = NodeOfCpu(i);
  }
  disks_.reserve(static_cast<size_t>(config.num_nodes));
  for (int node = 0; node < config.num_nodes; ++node) {
    disks_.push_back(std::make_unique<Disk>(seed * 1000003 + static_cast<uint64_t>(node)));
  }
}

void Machine::EnableParallelSim(int threads, Time grid_ns) {
  CHECK_EQ(events_.total_run(), 0u)
      << "EnableParallelSim must run before the first event";
  CHECK_GT(grid_ns, 0);
  slice_grid_ns_ = grid_ns;
  parallel_exec_ = std::make_unique<ParallelExecutor>(&events_, threads, grid_ns);
}

size_t Machine::RunUntil(Time deadline) {
  if (parallel_exec_ != nullptr) {
    return parallel_exec_->RunUntil(deadline);
  }
  return events_.RunUntil(deadline);
}

void Machine::FailNode(int node) {
  LOG(kInfo) << "hardware fault: node " << node << " failed at t=" << Now() << "ns";
  node_dead_[static_cast<size_t>(node)] = true;
  mem_.FailNode(node);
  sips_.SetNodeDead(node, true);
  for (int c = FirstCpuOfNode(node); c < FirstCpuOfNode(node) + config_.cpus_per_node; ++c) {
    cpus_[static_cast<size_t>(c)].halted = true;
  }
}

void Machine::HaltCpu(int cpu_id) {
  LOG(kInfo) << "hardware fault: cpu " << cpu_id << " halted at t=" << Now() << "ns";
  cpus_[static_cast<size_t>(cpu_id)].halted = true;
}

void Machine::CutOffNode(int node) {
  mem_.CutOffNode(node);
  sips_.SetNodeDead(node, true);
}

void Machine::RestoreNode(int node) {
  node_dead_[static_cast<size_t>(node)] = false;
  mem_.RestoreNode(node);
  sips_.SetNodeDead(node, false);
  for (int c = FirstCpuOfNode(node); c < FirstCpuOfNode(node) + config_.cpus_per_node; ++c) {
    cpus_[static_cast<size_t>(c)].halted = false;
    cpus_[static_cast<size_t>(c)].free_at = Now();
  }
}

}  // namespace flash
