// The machine's physical memory with the FLASH memory fault model (paper
// section 2):
//  - Accesses to unaffected memory keep working after a fault.
//  - Accesses to failed memory raise a bus error instead of stalling forever.
//  - Only nodes authorized by the firewall can damage a given line.
//
// Every simulated store goes through Write() where the firewall check runs, so
// wild writes are actually blocked (or actually corrupt bytes when permitted).

#ifndef HIVE_SRC_FLASH_PHYS_MEM_H_
#define HIVE_SRC_FLASH_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/flash/bus_error.h"
#include "src/flash/config.h"
#include "src/flash/firewall.h"

namespace flash {

// Flat byte image backed by demand-zero anonymous pages. A campaign constructs
// one Machine (16 MB of simulated memory per node) per scenario; an eagerly
// zeroed std::vector spends more wall time in memset than the scenario spends
// simulating, so the image leans on the host kernel instead: pages materialise
// as zeros on first touch, and re-zeroing a node range on reintegration is a
// page-table operation, not a 16 MB write. Falls back to a zeroed vector when
// mmap is unavailable.
class ZeroFillImage {
 public:
  explicit ZeroFillImage(uint64_t size);
  ~ZeroFillImage();

  ZeroFillImage(const ZeroFillImage&) = delete;
  ZeroFillImage& operator=(const ZeroFillImage&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }

  // Resets [offset, offset+len) to zeros. Page-aligned spans of a mapped
  // image are dropped back to demand-zero instead of being written.
  void ZeroRange(uint64_t offset, uint64_t len);

 private:
  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;
};

class PhysMem {
 public:
  explicit PhysMem(const MachineConfig& config);

  // --- Normal processor access paths (firewall- and fault-checked). ---

  // Reads `out.size()` bytes at addr on behalf of `cpu`. Throws BusError if
  // the range is invalid or any page is on failed/cut-off memory.
  void Read(int cpu, PhysAddr addr, std::span<uint8_t> out) const;

  // Writes bytes at addr on behalf of `cpu`. Additionally throws BusError if
  // the firewall denies `cpu` write permission on any touched page.
  void Write(int cpu, PhysAddr addr, std::span<const uint8_t> data);

  // Typed helpers; alignment is enforced (misaligned -> BusError, like the
  // MIPS address error exception).
  template <typename T>
  T ReadValue(int cpu, PhysAddr addr) const {
    CheckAlignment(addr, sizeof(T));
    T value;
    Read(cpu, addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), sizeof(T)));
    return value;
  }

  template <typename T>
  void WriteValue(int cpu, PhysAddr addr, const T& value) {
    CheckAlignment(addr, sizeof(T));
    Write(cpu, addr,
          std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(T)));
  }

  // DMA from a device on `node`: checked as if it were a write from the first
  // processor of that node (paper section 4.2).
  void DmaWrite(int node, PhysAddr addr, std::span<const uint8_t> data);
  void DmaRead(int node, PhysAddr addr, std::span<uint8_t> out) const;

  // --- Fault model control. ---

  // Hardware fault: the node's memory range becomes inaccessible.
  void FailNode(int node) { node_failed_[node] = true; }
  bool node_failed(int node) const { return node_failed_[node]; }

  // Memory cutoff (paper table 8.1): the cell panic routine cuts off all
  // remote access to node-local memory so corrupt data cannot spread. Local
  // CPUs of the node can still access it.
  void CutOffNode(int node) { node_cutoff_[node] = true; }
  bool node_cutoff(int node) const { return node_cutoff_[node]; }

  // Clears failure/cutoff state after diagnostics + reboot (reintegration).
  void RestoreNode(int node);

  // --- Backdoor used only by the fault injector and test assertions. ---
  // Models a software bug inside the owning cell scribbling its own memory:
  // bypasses the firewall and the fault flags.
  void RawWrite(PhysAddr addr, std::span<const uint8_t> data);
  void RawRead(PhysAddr addr, std::span<uint8_t> out) const;

  // --- Geometry. ---
  int NodeOfAddr(PhysAddr addr) const { return static_cast<int>(addr / memory_per_node_); }
  Pfn PfnOfAddr(PhysAddr addr) const { return addr / page_size_; }
  PhysAddr AddrOfPfn(Pfn pfn) const { return pfn * page_size_; }
  bool ValidRange(PhysAddr addr, uint64_t len) const {
    return len <= total_size_ && addr <= total_size_ - len;
  }
  uint64_t page_size() const { return page_size_; }

  Firewall& firewall() { return firewall_; }
  const Firewall& firewall() const { return firewall_; }

 private:
  void CheckAlignment(PhysAddr addr, size_t size) const {
    // The bus only performs naturally aligned power-of-two-sized accesses; a
    // zero or non-power-of-two size can never be a valid transfer (and would
    // make the modulus check below meaningless or divide by zero).
    if (size == 0 || (size & (size - 1)) != 0 || (addr & (size - 1)) != 0) {
      throw BusError(BusErrorKind::kMisaligned, addr);
    }
  }
  // Throws if any byte of [addr, addr+len) is unreachable for `accessor_node`.
  void CheckAccessible(PhysAddr addr, uint64_t len, int accessor_node) const;

  uint64_t memory_per_node_;
  uint64_t page_size_;
  uint64_t total_size_;
  int cpus_per_node_;
  Firewall firewall_;
  ZeroFillImage bytes_;  // One flat image; node ranges are contiguous.
  std::vector<bool> node_failed_;
  std::vector<bool> node_cutoff_;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_PHYS_MEM_H_
