#include "src/flash/firewall.h"

#include "src/base/log.h"

namespace flash {

Firewall::Firewall(const MachineConfig& config)
    : pages_per_node_(config.pages_per_node()),
      cpus_per_node_(config.cpus_per_node),
      vectors_(config.total_pages(), kAllowAll) {
  CHECK_LE(config.num_cpus(), 64) << "firewall bit vector covers at most 64 CPUs";
}

void Firewall::SetVector(Pfn pfn, uint64_t mask, int requesting_cpu) {
  CHECK_LT(pfn, vectors_.size());
  CHECK_EQ(NodeOfPfn(pfn), NodeOfCpu(requesting_cpu))
      << "only local processors may change a node's firewall bits";
  vectors_[pfn] = mask;
  ++vector_changes_;
}

void Firewall::GrantCpus(Pfn pfn, uint64_t mask, int requesting_cpu) {
  SetVector(pfn, vectors_[pfn] | mask, requesting_cpu);
}

void Firewall::RevokeCpus(Pfn pfn, uint64_t mask, int requesting_cpu) {
  SetVector(pfn, vectors_[pfn] & ~mask, requesting_cpu);
}

}  // namespace flash
