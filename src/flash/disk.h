// HP 97560 disk latency model (paper section 7.2, following Kotz et al.,
// "A Detailed Simulation of the HP 97560 Disk Drive", PCS-TR94-20).
//
// Parameters from the Kotz report: 1962 cylinders, 19 heads, 72 sectors of
// 512 bytes per track, 4002 RPM (14.992 ms per revolution), seek time
// 3.24 + 0.400 * sqrt(d) ms for d <= 383 cylinders and 8.00 + 0.008 * d ms
// beyond. The model tracks head position so sequential I/O is cheap.

#ifndef HIVE_SRC_FLASH_DISK_H_
#define HIVE_SRC_FLASH_DISK_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/flash/config.h"

namespace flash {

class Disk {
 public:
  static constexpr uint64_t kSectorBytes = 512;
  static constexpr uint64_t kSectorsPerTrack = 72;
  static constexpr uint64_t kHeads = 19;
  static constexpr uint64_t kCylinders = 1962;
  static constexpr Time kRevolutionNs = 14992 * kMicrosecond;  // 14.992 ms.

  explicit Disk(uint64_t seed) : rng_(seed) {}

  uint64_t capacity_bytes() const {
    return kSectorBytes * kSectorsPerTrack * kHeads * kCylinders;
  }

  // Latency to transfer `nbytes` starting at byte offset `offset`, including
  // seek, rotation, and media transfer. Advances the head state.
  Time AccessTime(uint64_t offset, uint64_t nbytes);

  // Stats.
  uint64_t accesses() const { return accesses_; }
  uint64_t sequential_accesses() const { return sequential_accesses_; }

 private:
  uint64_t CylinderOfOffset(uint64_t offset) const {
    return (offset / kSectorBytes) / (kSectorsPerTrack * kHeads);
  }
  static Time SeekTime(uint64_t distance_cylinders);

  base::Rng rng_;
  uint64_t head_cylinder_ = 0;
  uint64_t next_sequential_offset_ = ~0ull;
  uint64_t accesses_ = 0;
  uint64_t sequential_accesses_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_DISK_H_
