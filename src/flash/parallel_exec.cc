#include "src/flash/parallel_exec.h"

#include <algorithm>
#include <queue>

#include "src/base/log.h"

namespace flash {

ParallelExecutor::ParallelExecutor(EventQueue* queue, int threads, Time grid_ns)
    : queue_(queue), threads_(std::max(1, threads)), grid_ns_(grid_ns) {}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t ParallelExecutor::RunUntil(Time deadline) {
  size_t ran = 0;
  while (RunBlock(deadline, &ran)) {
  }
  if (queue_->now_ < deadline) {
    queue_->now_ = deadline;
  }
  return ran;
}

bool ParallelExecutor::RunBlock(Time deadline, size_t* ran) {
  EventQueue& q = *queue_;
  q.DropTombstones();
  if (q.heap_.empty() || q.heap_.top().when > deadline) {
    return false;
  }
  const EventQueue::HeapEntry top = q.heap_.top();
  if (grid_ns_ == 0 || !q.SlotAt(top.slot).safe) {
    // Serial path: identical to EventQueue::Step for one unsafe event.
    q.heap_.pop();
    q.RunEntry(top);
    ++serial_events_;
    ++*ran;
    return true;
  }

  // Safe event at the front: form a window [T, horizon). The horizon starts
  // at the next grid boundary (strictly above T, so a window starting on a
  // boundary is never empty) and shrinks to the first unsafe timestamp
  // encountered; deadline+1 keeps RunUntil semantics (events at exactly
  // `deadline` run).
  const Time window_start = top.when;
  Time horizon = (window_start / grid_ns_ + 1) * grid_ns_;
  horizon = std::min(horizon, deadline + 1);

  // Pop the window in (when, seq) order, bundling by cell. The first unsafe
  // event ends the window at its timestamp: everything popped before it
  // precedes it serially, everything at or after it stays queued.
  size_t bundle_count = 0;
  size_t popped = 0;
  for (;;) {
    q.DropTombstones();
    if (q.heap_.empty() || q.heap_.top().when >= horizon) {
      break;
    }
    const EventQueue::HeapEntry entry = q.heap_.top();
    EventQueue::Slot& slot = q.SlotAt(entry.slot);
    if (!slot.safe) {
      horizon = entry.when;
      break;
    }
    q.heap_.pop();
    --q.live_count_;
    const int cell = slot.cell;
    Bundle* bundle = nullptr;
    for (size_t i = 0; i < bundle_count; ++i) {
      if (bundles_[i].cell == cell) {
        bundle = &bundles_[i];
        break;
      }
    }
    if (bundle == nullptr) {
      if (bundle_count == bundles_.size()) {
        bundles_.emplace_back();
      }
      bundle = &bundles_[bundle_count++];
      bundle->cell = cell;
      bundle->events.clear();
      bundle->ctx = EventQueue::WorkerContext{};
      bundle->profile.Reset();
    }
    PreEvent pre;
    pre.when = entry.when;
    pre.seq = entry.seq;
    pre.fn = std::move(slot.fn);
    q.ReleaseSlot(entry.slot);
    bundle->events.push_back(std::move(pre));
    ++popped;
  }
  CHECK_GT(popped, 0u);

  window_horizon_ = horizon;
  // With one thread, every bundle runs on the coordinator under the outer
  // profile directly: attribution is gap-free and the per-subsystem ns sums
  // equal the bracketed wall time (sim_profile_test pins the 1% bound). Only
  // real worker threads need per-bundle profiles (merged at the barrier, so
  // N-thread sums measure CPU time, not wall time).
  bundles_use_profile_ = base::SimProfile::Active() != nullptr && threads_ > 1;
  for (size_t i = 0; i < bundle_count; ++i) {
    bundles_[i].ctx.cell = bundles_[i].cell;
    bundles_[i].ctx.horizon = horizon;
    bundles_[i].ctx.queue = &q;
  }

  // When per-bundle profiles are in play (threads_ > 1), pause the
  // coordinator's profile across the window so the span is measured once by
  // the bundles (merged at the barrier) instead of twice.
  base::SimProfile* outer_profile =
      bundles_use_profile_ ? base::SimProfile::Active() : nullptr;
  if (outer_profile != nullptr) {
    outer_profile->End();
  }
  DispatchBundles(bundle_count);
  ReplayWindow(bundle_count);
  if (outer_profile != nullptr) {
    outer_profile->Begin();
  }

  ++windows_run_;
  uint64_t executed = 0;
  for (size_t i = 0; i < bundle_count; ++i) {
    executed += bundles_[i].ctx.executed;
  }
  window_events_ += executed;
  max_window_cells_ = std::max<uint64_t>(max_window_cells_, bundle_count);
  *ran += executed;
  return true;
}

void ParallelExecutor::ExecuteBundle(Bundle* bundle) {
  EventQueue& q = *queue_;
  EventQueue::WorkerContext& ctx = bundle->ctx;
  ctx.records.clear();
  ctx.records.reserve(bundle->events.size());
  ctx.executed = 0;
  ctx.next_local_order = 0;

  base::SimProfile* outer_profile = base::SimProfile::Active();
  if (bundles_use_profile_) {
    base::SimProfile::SetActive(&bundle->profile);
    bundle->profile.Begin();
  }
  EventQueue::WorkerSlot() = &ctx;

  // Interleave the pre-popped events with in-window creations exactly as the
  // serial loop would: by (when, seq); every creation's eventual seq exceeds
  // every pre-popped seq, so ties go to the pre event, and two creations at
  // one timestamp order by creation order.
  size_t next_pre = 0;
  for (;;) {
    bool take_pre;
    if (next_pre < bundle->events.size() && !ctx.pending_local.empty()) {
      take_pre = bundle->events[next_pre].when <= ctx.pending_local.top().when;
    } else if (next_pre < bundle->events.size()) {
      take_pre = true;
    } else if (!ctx.pending_local.empty()) {
      take_pre = false;
    } else {
      break;
    }
    if (take_pre) {
      PreEvent& pre = bundle->events[next_pre++];
      EventQueue::ExecRecord record;
      record.when = pre.when;
      record.seq = pre.seq;
      record.from_heap = true;
      ctx.records.push_back(std::move(record));
      ctx.current_record = static_cast<uint32_t>(ctx.records.size() - 1);
      ctx.local_now = pre.when;
      pre.fn();
      pre.fn.Reset();
      ++ctx.executed;
    } else {
      const EventQueue::WorkerContext::PendingLocal pending = ctx.pending_local.top();
      ctx.pending_local.pop();
      {
        // Re-check under the creator record: a later event may have cancelled
        // this creation before its turn came.
        EventQueue::DeferredSchedule& sched =
            ctx.records[pending.record].schedules[pending.schedule];
        if (sched.cancelled) {
          continue;
        }
        sched.done = true;
      }
      uint32_t slot_index;
      EventFn fn;
      {
        std::lock_guard<std::mutex> lock(q.pool_mutex_);
        slot_index = ctx.records[pending.record].schedules[pending.schedule].slot;
        fn = std::move(q.SlotAt(slot_index).fn);
        q.ReleaseSlot(slot_index);
      }
      EventQueue::ExecRecord record;
      record.when = pending.when;
      record.from_heap = false;
      ctx.records.push_back(std::move(record));
      const uint32_t record_index = static_cast<uint32_t>(ctx.records.size() - 1);
      ctx.records[pending.record].schedules[pending.schedule].child_record = record_index;
      ctx.current_record = record_index;
      ctx.local_now = pending.when;
      fn();
      ++ctx.executed;
    }
  }

  EventQueue::WorkerSlot() = nullptr;
  if (bundles_use_profile_) {
    bundle->profile.End();
    base::SimProfile::SetActive(outer_profile);
  }
}

void ParallelExecutor::DispatchBundles(size_t count) {
  if (count == 1 || threads_ == 1) {
    for (size_t i = 0; i < count; ++i) {
      ExecuteBundle(&bundles_[i]);
    }
    return;
  }
  const size_t wanted_workers =
      std::min<size_t>(static_cast<size_t>(threads_ - 1), count - 1);
  while (workers_.size() < wanted_workers) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_bundle_count_ = count;
    bundles_done_ = 0;
    next_bundle_.store(0, std::memory_order_relaxed);
    ++job_generation_;
  }
  cv_work_.notify_all();
  // The coordinator works too; everyone pulls bundle indices off one counter.
  for (;;) {
    const size_t index = next_bundle_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count) {
      break;
    }
    ExecuteBundle(&bundles_[index]);
    std::lock_guard<std::mutex> lock(mu_);
    if (++bundles_done_ == job_bundle_count_) {
      cv_done_.notify_one();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return bundles_done_ == job_bundle_count_; });
  job_bundle_count_ = 0;
}

void ParallelExecutor::WorkerMain() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this, seen_generation] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = job_generation_;
    }
    for (;;) {
      const size_t index = next_bundle_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(mu_);
      if (index >= job_bundle_count_) {
        break;
      }
      lock.unlock();
      ExecuteBundle(&bundles_[index]);
      lock.lock();
      if (++bundles_done_ == job_bundle_count_) {
        cv_done_.notify_one();
      }
    }
  }
}

void ParallelExecutor::ReplayWindow(size_t bundle_count) {
  EventQueue& q = *queue_;
  // Priority-queue simulation of the serial loop over the records of every
  // executed event: pop in (when, seq) order, assign sequence numbers to the
  // pops' recorded schedules in call order. In-window children enter the
  // replay heap once their seq is assigned (their creator always pops
  // first), deferred children go onto the real heap. This reproduces the
  // serial run's seq assignment exactly -- the determinism keystone.
  struct ReplayRef {
    Time when;
    uint64_t seq;
    uint32_t bundle;
    uint32_t record;
    bool operator>(const ReplayRef& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };
  std::priority_queue<ReplayRef, std::vector<ReplayRef>, std::greater<>> replay;
  for (size_t b = 0; b < bundle_count; ++b) {
    const auto& records = bundles_[b].ctx.records;
    for (uint32_t r = 0; r < records.size(); ++r) {
      if (records[r].from_heap) {
        replay.push(ReplayRef{records[r].when, records[r].seq,
                              static_cast<uint32_t>(b), r});
      }
    }
  }
  Time last_when = q.now_;
  uint64_t executed = 0;
  while (!replay.empty()) {
    const ReplayRef ref = replay.top();
    replay.pop();
    last_when = ref.when;
    ++executed;
    auto& records = bundles_[ref.bundle].ctx.records;
    for (const EventQueue::DeferredSchedule& sched : records[ref.record].schedules) {
      const uint64_t seq = q.next_seq_++;
      if (sched.cancelled) {
        continue;  // Serial parity: a cancelled schedule still consumed a seq.
      }
      if (sched.ran_locally) {
        EventQueue::ExecRecord& child = records[sched.child_record];
        child.seq = seq;
        replay.push(ReplayRef{child.when, seq, ref.bundle, sched.child_record});
      } else {
        q.heap_.push(EventQueue::HeapEntry{sched.when, seq, sched.slot,
                                           sched.generation});
        ++q.live_count_;
      }
    }
  }
  q.total_run_ += executed;
  q.now_ = last_when;
  if (bundles_use_profile_ && base::SimProfile::Active() != nullptr) {
    for (size_t b = 0; b < bundle_count; ++b) {
      base::SimProfile::Active()->Merge(bundles_[b].profile);
    }
  }
}

}  // namespace flash
