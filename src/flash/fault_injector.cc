#include "src/flash/fault_injector.h"

#include <array>

#include "src/base/log.h"

namespace flash {

void FaultInjector::ScheduleNodeFailure(int node, Time when) {
  machine_->events().ScheduleAt(when, [this, node] { machine_->FailNode(node); });
}

uint64_t FaultInjector::CorruptPointer(PhysAddr addr, PointerCorruptionMode mode,
                                       PhysAddr victim_range_base, uint64_t victim_range_size,
                                       PhysAddr other_range_base, uint64_t other_range_size) {
  uint64_t original = 0;
  machine_->mem().RawRead(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&original),
                                                   sizeof(original)));
  uint64_t corrupt = 0;
  switch (mode) {
    case PointerCorruptionMode::kRandomSameCell:
      corrupt = victim_range_base + (rng_.Below(victim_range_size) & ~7ull);
      break;
    case PointerCorruptionMode::kRandomOtherCell:
      corrupt = other_range_base + (rng_.Below(other_range_size) & ~7ull);
      break;
    case PointerCorruptionMode::kOffByOneWord:
      corrupt = original + 8;
      break;
    case PointerCorruptionMode::kSelfPointing:
      corrupt = addr;
      break;
  }
  LOG(kInfo) << "fault injection: pointer at 0x" << std::hex << addr << " 0x" << original
             << " -> 0x" << corrupt << std::dec;
  machine_->mem().RawWrite(addr, std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(&corrupt),
                                     sizeof(corrupt)));
  return corrupt;
}

void FaultInjector::CorruptBytes(PhysAddr addr, uint64_t len) {
  std::array<uint8_t, 256> garbage;
  while (len > 0) {
    const uint64_t chunk = std::min<uint64_t>(len, garbage.size());
    for (uint64_t i = 0; i < chunk; ++i) {
      garbage[i] = static_cast<uint8_t>(rng_.Next());
    }
    machine_->mem().RawWrite(addr, std::span<const uint8_t>(garbage.data(), chunk));
    addr += chunk;
    len -= chunk;
  }
}

void FaultInjector::WriteWord(PhysAddr addr, uint64_t value) {
  LOG(kInfo) << "fault injection: word at 0x" << std::hex << addr << " <- 0x" << value
             << std::dec;
  machine_->mem().RawWrite(addr, std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(&value),
                                     sizeof(value)));
}

void FaultInjector::CorruptTypeTag(PhysAddr tag_addr, uint32_t bad_tag) {
  LOG(kInfo) << "fault injection: type tag at 0x" << std::hex << tag_addr << " <- 0x"
             << bad_tag << std::dec;
  machine_->mem().RawWrite(tag_addr, std::span<const uint8_t>(
                                         reinterpret_cast<const uint8_t*>(&bad_tag),
                                         sizeof(bad_tag)));
}

const char* MessageFaultKindName(MessageFaultKind kind) {
  switch (kind) {
    case MessageFaultKind::kNone:
      return "none";
    case MessageFaultKind::kDrop:
      return "drop";
    case MessageFaultKind::kDuplicate:
      return "duplicate";
    case MessageFaultKind::kDelay:
      return "delay";
    case MessageFaultKind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

namespace {

bool PlanMatches(const MessageFaultPlan& plan, Time now, int src_node, int dst_node) {
  if (now < plan.start || now >= plan.end) {
    return false;
  }
  if (plan.src_node >= 0 && plan.src_node != src_node) {
    return false;
  }
  if (plan.dst_node >= 0 && plan.dst_node != dst_node) {
    return false;
  }
  return true;
}

}  // namespace

bool MessageFaultModel::Active(Time now, int src_node, int dst_node) const {
  for (const MessageFaultPlan& plan : plans_) {
    if (PlanMatches(plan, now, src_node, dst_node)) {
      return true;
    }
  }
  return false;
}

MessageFaultDecision MessageFaultModel::Sample(Time now, int src_node, int dst_node) {
  MessageFaultDecision decision;
  const MessageFaultPlan* match = nullptr;
  for (const MessageFaultPlan& plan : plans_) {
    if (PlanMatches(plan, now, src_node, dst_node)) {
      match = &plan;
      break;
    }
  }
  if (match == nullptr) {
    return decision;  // No RNG draw outside an active window.
  }
  ++stats_.sampled;
  const uint64_t roll = rng_.Below(1000);
  uint64_t threshold = match->drop_pm;
  if (roll < threshold) {
    decision.kind = MessageFaultKind::kDrop;
    ++stats_.dropped;
    return decision;
  }
  threshold += match->dup_pm;
  if (roll < threshold) {
    decision.kind = MessageFaultKind::kDuplicate;
    ++stats_.duplicated;
    return decision;
  }
  threshold += match->delay_pm;
  if (roll < threshold) {
    decision.kind = MessageFaultKind::kDelay;
    decision.delay_ns =
        match->delay_max_ns > 0
            ? static_cast<Time>(1 + rng_.Below(static_cast<uint64_t>(match->delay_max_ns)))
            : 1;
    ++stats_.delayed;
    return decision;
  }
  threshold += match->corrupt_pm;
  if (roll < threshold) {
    decision.kind = MessageFaultKind::kCorrupt;
    decision.corrupt_byte = static_cast<uint32_t>(rng_.Below(128));
    decision.corrupt_mask = static_cast<uint8_t>(1u << rng_.Below(8));
    ++stats_.corrupted;
    return decision;
  }
  return decision;
}

}  // namespace flash
