#include "src/flash/fault_injector.h"

#include <array>

#include "src/base/log.h"

namespace flash {

void FaultInjector::ScheduleNodeFailure(int node, Time when) {
  machine_->events().ScheduleAt(when, [this, node] { machine_->FailNode(node); });
}

uint64_t FaultInjector::CorruptPointer(PhysAddr addr, PointerCorruptionMode mode,
                                       PhysAddr victim_range_base, uint64_t victim_range_size,
                                       PhysAddr other_range_base, uint64_t other_range_size) {
  uint64_t original = 0;
  machine_->mem().RawRead(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&original),
                                                   sizeof(original)));
  uint64_t corrupt = 0;
  switch (mode) {
    case PointerCorruptionMode::kRandomSameCell:
      corrupt = victim_range_base + (rng_.Below(victim_range_size) & ~7ull);
      break;
    case PointerCorruptionMode::kRandomOtherCell:
      corrupt = other_range_base + (rng_.Below(other_range_size) & ~7ull);
      break;
    case PointerCorruptionMode::kOffByOneWord:
      corrupt = original + 8;
      break;
    case PointerCorruptionMode::kSelfPointing:
      corrupt = addr;
      break;
  }
  LOG(kInfo) << "fault injection: pointer at 0x" << std::hex << addr << " 0x" << original
             << " -> 0x" << corrupt << std::dec;
  machine_->mem().RawWrite(addr, std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(&corrupt),
                                     sizeof(corrupt)));
  return corrupt;
}

void FaultInjector::CorruptBytes(PhysAddr addr, uint64_t len) {
  std::array<uint8_t, 256> garbage;
  while (len > 0) {
    const uint64_t chunk = std::min<uint64_t>(len, garbage.size());
    for (uint64_t i = 0; i < chunk; ++i) {
      garbage[i] = static_cast<uint8_t>(rng_.Next());
    }
    machine_->mem().RawWrite(addr, std::span<const uint8_t>(garbage.data(), chunk));
    addr += chunk;
    len -= chunk;
  }
}

}  // namespace flash
