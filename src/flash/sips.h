// SIPS: the short interprocessor send facility added to the FLASH coherence
// controller (paper section 6). Each message carries one cache line (128
// bytes) of data, is delivered in about the latency of a remote cache miss,
// and is reliable with hardware flow control. Each node has separate short
// receive queues for requests and replies, which makes deadlock avoidance easy.
//
// An optional seed-driven message-fault model (see fault_injector.h) breaks
// the reliability assumption on demand: messages inside an active fault-plan
// window may be dropped, duplicated, delayed onto a non-minimal route, or
// corrupted by one flipped payload byte. Every line carries a checksum
// computed at send time; a receiver that sees a checksum mismatch discards
// the line (counted in corrupt_detected), so corruption degrades into loss
// rather than silent bad data -- the layer above must retransmit.

#ifndef HIVE_SRC_FLASH_SIPS_H_
#define HIVE_SRC_FLASH_SIPS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/flash/config.h"
#include "src/flash/event_queue.h"
#include "src/flash/interconnect.h"

namespace flash {

class MessageFaultModel;

constexpr size_t kSipsPayloadBytes = 128;

// FNV-1a over one cache line; the "hardware" per-line checksum.
uint32_t SipsChecksum(const std::array<uint8_t, kSipsPayloadBytes>& payload);

struct SipsMessage {
  int src_cpu = -1;
  int dst_node = -1;
  bool is_reply = false;
  Time send_time = 0;
  Time deliver_time = 0;
  uint32_t checksum = 0;
  std::array<uint8_t, kSipsPayloadBytes> payload{};
};

// Invoked at interrupt level on the destination node when a message arrives.
using SipsHandler = std::function<void(const SipsMessage&)>;

class Sips {
 public:
  Sips(EventQueue* queue, const MachineConfig& config, const Interconnect* interconnect);
  ~Sips();

  // The kernel running on `node` registers its message interrupt handler.
  void SetHandler(int node, SipsHandler handler);

  // Marks a node dead: messages to it vanish (the sender discovers this via
  // RPC timeout, per the memory fault model), messages from it stop.
  void SetNodeDead(int node, bool dead);

  // Sends one cache line. Fails with kResourceExhausted if the destination
  // receive queue is full (hardware flow control: the sender retries).
  // Returns OK even if the destination is dead -- reliability is hop-by-hop;
  // a dead node simply never processes the message.
  base::Status Send(int src_cpu, int dst_node, bool is_reply,
                    const std::array<uint8_t, kSipsPayloadBytes>& payload);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t corrupt_detected() const { return corrupt_detected_; }

  // Installs (or replaces) the message-fault model. The model is shared with
  // the synchronous RPC layer above, which consults it per logical hop.
  void EnableFaultModel(uint64_t seed);
  MessageFaultModel* fault_model() { return fault_model_.get(); }

 private:
  int NodeOfCpu(int cpu) const { return cpu / cpus_per_node_; }
  void ScheduleDelivery(SipsMessage msg, Time delay, bool release_credit);

  EventQueue* queue_;
  const Interconnect* interconnect_;
  int cpus_per_node_;
  int queue_depth_;
  Time ipi_ns_;
  Time payload_ns_;
  std::vector<SipsHandler> handlers_;       // Per node.
  std::vector<int> inflight_requests_;      // Per destination node.
  std::vector<int> inflight_replies_;       // Per destination node.
  std::vector<bool> node_dead_;
  std::unique_ptr<MessageFaultModel> fault_model_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t corrupt_detected_ = 0;
};

}  // namespace flash

#endif  // HIVE_SRC_FLASH_SIPS_H_
