// hive_serve engine: a long-running multi-tenant soak of a Hive machine under
// continuous fault pressure. Tenants submit a steady mix of short requests
// (file reads/writes, page-fault bursts, metadata walks, fork storms) while a
// background fault plan rotates through every campaign fault family --
// node failure, address-map corruption, wild write, false accusation, message
// faults, rogue cell, reboot storm -- one episode at a time, waiting for the
// system to become whole again between episodes.
//
// Per-request SLO accounting threads through the core via SloRecorder:
// submit-to-completion latency histograms (p50/p99/p999), per-cell
// availability windows (downtime + recovery barrier freezes), admission sheds
// (graceful degradation under overload), and per-episode recovery durations.
// The summary fingerprint is a function of the seed alone: byte-identical for
// any --sim-threads count.

#ifndef HIVE_SRC_SERVE_SERVE_H_
#define HIVE_SRC_SERVE_SERVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/campaign/scenario.h"
#include "src/core/types.h"

namespace serve {

// BENCH_serve.json schema identifier.
inline constexpr char kServeSchema[] = "hive-serve-v1";

struct ServeOptions {
  uint64_t seed = 1;
  int num_cells = 4;
  int tenants = 8;
  int sim_threads = 1;
  hive::Time duration_ns = 60 * hive::kSecond;  // Submission window.
  hive::Time drain_ns = 5 * hive::kSecond;      // Post-window completion grace.

  // Graceful degradation: per-cell admission watermarks (0 = off).
  size_t admit_runq_watermark = 48;
  uint64_t admit_heap_watermark_bytes = 0;

  // SLO bounds the oracles enforce.
  double availability_floor = 0.70;             // Per cell, over the window.
  hive::Time latency_p999_bound_ns = 400 * hive::kMillisecond;
  hive::Time recovery_bound_ns = 400 * hive::kMillisecond;  // Per episode.

  // Seeded sensitivity bugs proving the oracles can trip:
  //   "no_shed"       -- admission control disabled; overload bursts pile up
  //                      on one cell and the p999 latency bound must trip.
  //   "slow_recovery" -- recovery page scans 100x slower; the per-episode
  //                      recovery-time bound must trip.
  std::string bug;

  // Smoke mode (CI): fewer tenants and a lighter request mix, same 60 s
  // simulated window and the same fault rotation.
  bool smoke = false;
};

// One background fault episode: inject, then wait until the system is whole
// (every cell live, reintegrated and out of recovery) before the next.
struct FaultEpisode {
  campaign::FaultKind kind = campaign::FaultKind::kNodeFailure;
  hive::CellId victim = 0;
  hive::Time injected_at = 0;
  hive::Time resolved_at = 0;       // 0: still open when the run ended.
  uint64_t completed_during = 0;    // Requests completed while open.
  bool landed = false;
};

// Per-cell slice of the run summary.
struct ServeCellSummary {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  hive::Time down_ns = 0;
  hive::Time suspended_ns = 0;
  double availability = 1.0;
  size_t max_runnable = 0;
};

struct ServeResult {
  ServeOptions options;
  hive::Time end_time = 0;

  // Requests.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;        // Admission-control rejections.
  uint64_t unroutable = 0;  // No live cell to submit to at pump time.
  uint64_t lost = 0;        // Process died with a fault (killed/cell death).
  uint64_t hung = 0;        // Never finished within the drain window.
  base::Histogram latency;  // Merged across cells, completed requests.

  std::vector<ServeCellSummary> cells;
  double availability_min = 1.0;

  // Fault pressure.
  std::vector<FaultEpisode> episodes;
  uint64_t episodes_landed = 0;
  std::vector<uint64_t> per_family;  // Indexed like campaign::kAllFaultKinds.
  double requests_per_fault = 0.0;   // Completed per landed episode.
  std::vector<hive::Time> recovery_durations;
  int recoveries_run = 0;
  int reintegrations = 0;

  // SLO verdict.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }

  // Deterministic digest of the summary (seed-dependent, thread-independent).
  uint64_t fingerprint = 0;

  // Human-readable tables (system state, recovery episodes, SLO summary).
  std::string report;
};

ServeResult RunSoak(const ServeOptions& options);

}  // namespace serve

#endif  // HIVE_SRC_SERVE_SERVE_H_
