#include "src/serve/serve.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <sstream>

#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/base/table.h"
#include "src/core/address_space.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/hive_system.h"
#include "src/core/kernel_heap.h"
#include "src/core/process.h"
#include "src/core/recovery.h"
#include "src/core/report.h"
#include "src/core/rpc.h"
#include "src/core/scheduler.h"
#include "src/core/slo.h"
#include "src/flash/fault_injector.h"
#include "src/flash/machine.h"
#include "src/flash/sips.h"
#include "src/workloads/serve_requests.h"
#include "src/workloads/workload.h"

namespace serve {
namespace {

using campaign::FaultKind;
using hive::Cell;
using hive::CellId;
using hive::Ctx;
using hive::HiveOptions;
using hive::HiveSystem;
using hive::kMillisecond;
using hive::kSecond;
using hive::ProcId;
using hive::Time;

// Soak machines match the campaign geometry: one single-CPU node per cell,
// small memory, so recovery scans and fault episodes stay fast while every
// containment path is exercised.
flash::MachineConfig SoakConfig(int num_cells) {
  flash::MachineConfig config;
  config.num_nodes = num_cells;
  config.cpus_per_node = 1;
  config.memory_per_node = 16ull * 1024 * 1024;
  return config;
}

// The rotation the background fault plan cycles through. Ordered so
// heavyweight episodes (storm, rogue) interleave with cheap ones.
constexpr FaultKind kRotation[] = {
    FaultKind::kNodeFailure,    FaultKind::kMessageFaults,
    FaultKind::kWildWrite,      FaultKind::kFalseAccusation,
    FaultKind::kAddrMapCorruption, FaultKind::kRogueCell,
    FaultKind::kRebootStorm,
};
constexpr size_t kRotationSize = sizeof(kRotation) / sizeof(kRotation[0]);

size_t FamilyIndex(FaultKind kind) {
  for (size_t i = 0; i < std::size(campaign::kAllFaultKinds); ++i) {
    if (campaign::kAllFaultKinds[i] == kind) {
      return i;
    }
  }
  return 0;
}

struct TenantState {
  int id = 0;
  CellId home = 0;
  bool hot = false;
  uint64_t file_seed = 0;
  uint64_t requests_issued = 0;
  std::string data_path;
};

// One submitted request, from fork to completion (or loss).
struct RequestRecord {
  CellId cell = 0;
  ProcId pid = 0;
  Time submitted_at = 0;
  Time completed_at = 0;
  bool completed = false;
};

// Shared between the pump, the fault driver and completion ops. All mutation
// happens on the main simulation thread: pump/driver events are untagged
// (unsafe, serial) and a ScriptedBehavior's final op never claims locality.
struct SoakState {
  HiveSystem* sys = nullptr;
  const ServeOptions* opts = nullptr;
  hive::SloRecorder* slo = nullptr;
  base::Rng rng{0};

  std::vector<TenantState> tenants;
  std::vector<RequestRecord> requests;
  uint64_t unroutable = 0;
  uint64_t completed_total = 0;
  uint64_t pump_ticks = 0;

  std::vector<FaultEpisode> episodes;
  size_t rotation_index = 0;
  bool episode_open = false;
};

constexpr uint64_t kTenantFileSize = 64 * 1024;

bool CellUsable(HiveSystem& sys, CellId c) {
  return sys.CellReachable(c) && sys.cell(c).alive() && !sys.cell(c).in_recovery();
}

bool SystemWhole(HiveSystem& sys) {
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!CellUsable(sys, c) || sys.CellConfirmedFailed(c)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request pump.
// ---------------------------------------------------------------------------

workloads::ServeRequestParams RequestParams(const SoakState& state,
                                            const TenantState& tenant) {
  workloads::ServeRequestParams params;
  params.data_path = tenant.data_path;
  params.file_seed = tenant.file_seed;
  params.file_size = kTenantFileSize;
  params.request_seed =
      state.opts->seed ^ (static_cast<uint64_t>(tenant.id) << 40) ^ tenant.requests_issued;
  params.home = tenant.home;
  return params;
}

std::unique_ptr<workloads::ScriptedBehavior> BuildRequest(SoakState& state,
                                                          TenantState& tenant) {
  const workloads::ServeRequestParams params = RequestParams(state, tenant);
  // Fixed request mix, rotated per tenant: mostly reads, with writes, fault
  // bursts, metadata walks and a fork storm thrown in.
  switch (tenant.requests_issued % 8) {
    case 0:
    case 3:
    case 5:
      return workloads::MakeReadRequest(params);
    case 1:
    case 6:
      return workloads::MakeWriteRequest(params);
    case 2:
      return workloads::MakeFaultRequest(params);
    case 4:
      return workloads::MakeMetadataRequest(params);
    default:
      return workloads::MakeForkBurstRequest(params, /*children=*/3);
  }
}

// Submits one request for `tenant`: admission check on the chosen cell, fork,
// and a completion op that records submit-to-completion latency.
void SubmitRequest(const std::shared_ptr<SoakState>& state, TenantState& tenant,
                   std::unique_ptr<workloads::ScriptedBehavior> behavior) {
  HiveSystem& sys = *state->sys;
  // Failover: the tenant's home serves unless it is down or recovering, in
  // which case the request lands on the next usable cell.
  CellId target = hive::kInvalidCell;
  for (int i = 0; i < sys.num_cells(); ++i) {
    const CellId candidate =
        static_cast<CellId>((tenant.home + i) % sys.num_cells());
    if (CellUsable(sys, candidate)) {
      target = candidate;
      break;
    }
  }
  ++tenant.requests_issued;
  if (target == hive::kInvalidCell) {
    ++state->unroutable;
    return;
  }
  Cell& cell = sys.cell(target);
  if (!cell.AdmitRequest()) {
    return;  // Shed: traced and counted by the SLO recorder.
  }
  const size_t index = state->requests.size();
  RequestRecord record;
  record.cell = target;
  record.submitted_at = sys.machine().Now();
  state->requests.push_back(record);
  behavior->Add([state, index](Ctx& ctx, hive::Process&) -> hive::StepOutcome {
    RequestRecord& req = state->requests[index];
    req.completed = true;
    req.completed_at = ctx.VirtualNow();
    state->slo->NoteCompleted(req.cell, req.completed_at - req.submitted_at);
    ++state->completed_total;
    if (state->episode_open && !state->episodes.empty()) {
      ++state->episodes.back().completed_during;
    }
    return hive::StepOutcome::kContinue;
  });
  Ctx ctx = cell.MakeCtx();
  auto pid = sys.Fork(ctx, target, std::move(behavior));
  if (!pid.ok()) {
    state->requests.pop_back();
    ++state->unroutable;
    return;
  }
  state->requests[index].pid = *pid;
  state->slo->NoteSubmitted(target);
}

void PumpRequests(const std::shared_ptr<SoakState>& state) {
  HiveSystem& sys = *state->sys;
  const ServeOptions& opts = *state->opts;
  if (sys.machine().Now() >= opts.duration_ns) {
    return;  // Submission window closed; drain only.
  }
  ++state->pump_ticks;
  const uint64_t hot_period = opts.smoke ? 5 : 2;
  const uint64_t cold_period = 4 * hot_period;
  for (TenantState& tenant : state->tenants) {
    const uint64_t period = tenant.hot ? hot_period : cold_period;
    // Phase-shift tenants so submissions spread across pump ticks.
    if ((state->pump_ticks + static_cast<uint64_t>(tenant.id)) % period != 0) {
      continue;
    }
    SubmitRequest(state, tenant, BuildRequest(*state, tenant));
  }
  sys.machine().events().ScheduleAfter(10 * kMillisecond,
                                       [state] { PumpRequests(state); });
}

// Periodic overload burst: a flood of fork-storm requests aimed at one cell.
// With admission control on, the watermark sheds the excess (and the run
// stays within its latency SLO); with --bug=no_shed the queue grows without
// bound and the p999 bound must trip.
void OverloadBurst(const std::shared_ptr<SoakState>& state, int burst_index) {
  HiveSystem& sys = *state->sys;
  if (sys.machine().Now() >= state->opts->duration_ns) {
    return;
  }
  TenantState& tenant = state->tenants[static_cast<size_t>(burst_index) %
                                       state->tenants.size()];
  const int flood = state->opts->smoke ? 120 : 250;
  for (int i = 0; i < flood; ++i) {
    SubmitRequest(state, tenant,
                  workloads::MakeForkBurstRequest(RequestParams(*state, tenant),
                                                  /*children=*/4));
  }
  sys.machine().events().ScheduleAfter(15 * kSecond, [state, burst_index] {
    OverloadBurst(state, burst_index + 1);
  });
}

// ---------------------------------------------------------------------------
// Health plane: heartbeats + intercell probe traffic (the serve analogue of
// the campaign's drivers; detection of silent/garbling/dead peers runs on
// top of these).
// ---------------------------------------------------------------------------

void DriveHeartbeats(const std::shared_ptr<SoakState>& state) {
  HiveSystem& sys = *state->sys;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!sys.CellReachable(c) || sys.cell(c).in_recovery()) {
      continue;
    }
    Cell& cell = sys.cell(c);
    for (CellId peer = 0; peer < sys.num_cells(); ++peer) {
      if (peer == c || !sys.CellReachable(peer) || sys.cell(peer).in_recovery()) {
        continue;
      }
      Ctx ctx = cell.MakeCtx();
      hive::RpcArgs args;
      hive::RpcReply reply;
      const base::Status status =
          cell.rpc().Call(ctx, peer, hive::MsgType::kNull, args, &reply);
      if (!status.ok()) {
        continue;  // The timeout path raised its own kRpcTimeout hint.
      }
      bool garbage = false;
      for (uint64_t word : reply.w) {
        garbage = garbage || word != 0;
      }
      if (garbage) {
        // A null reply with payload: the peer is scribbling replies (rogue).
        hive::HintEvidence evidence;
        evidence.structure = hive::EvidenceStructure::kRpcReply;
        cell.detector().RaiseHintWithEvidence(
            ctx, peer, hive::HintReason::kInvariantMismatch, evidence);
      }
    }
  }
  if (sys.machine().Now() + 20 * kMillisecond <= state->opts->duration_ns +
                                                    state->opts->drain_ns) {
    sys.machine().events().ScheduleAfter(20 * kMillisecond,
                                         [state] { DriveHeartbeats(state); });
  }
}

// Steady non-idempotent intercell traffic (borrow/return one frame) so
// message-fault windows always have RPC mutations in flight and recovery has
// live loan state to reclaim.
void ProbeIntercellRpc(const std::shared_ptr<SoakState>& state) {
  HiveSystem& sys = *state->sys;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    const CellId peer = static_cast<CellId>((c + 1) % sys.num_cells());
    if (peer == c || !CellUsable(sys, c) || !CellUsable(sys, peer)) {
      continue;
    }
    Cell& cell = sys.cell(c);
    Ctx ctx = cell.MakeCtx();
    hive::RpcArgs borrow;
    borrow.w[0] = static_cast<uint64_t>(c);
    borrow.w[1] = 1;
    hive::RpcReply frames;
    const base::Status status =
        cell.rpc().Call(ctx, peer, hive::MsgType::kBorrowFrames, borrow, &frames);
    if (status.ok() && frames.w[0] >= 1) {
      hive::RpcArgs give_back;
      give_back.w[0] = static_cast<uint64_t>(c);
      give_back.w[1] = frames.w[1];
      hive::RpcReply ignored;
      (void)cell.rpc().Call(ctx, peer, hive::MsgType::kReturnFrame, give_back, &ignored);
    }
  }
  if (sys.machine().Now() + 25 * kMillisecond <= state->opts->duration_ns) {
    sys.machine().events().ScheduleAfter(25 * kMillisecond,
                                         [state] { ProbeIntercellRpc(state); });
  }
}

// ---------------------------------------------------------------------------
// Background fault plan: one episode at a time, rotating through the seven
// families, waiting for the system to become whole between episodes.
// ---------------------------------------------------------------------------

void InjectNextFault(const std::shared_ptr<SoakState>& state);

// Polls until every cell is live, reintegrated and out of recovery (or the
// episode timeout passes), then closes the episode and schedules the next.
void PollEpisodeResolved(const std::shared_ptr<SoakState>& state, Time not_before,
                         Time give_up) {
  HiveSystem& sys = *state->sys;
  const Time now = sys.machine().Now();
  if (now < not_before || (!SystemWhole(sys) && now < give_up)) {
    sys.machine().events().ScheduleAfter(5 * kMillisecond, [state, not_before, give_up] {
      PollEpisodeResolved(state, not_before, give_up);
    });
    return;
  }
  state->episodes.back().resolved_at = now;
  state->episode_open = false;
  const Time gap = 600 * kMillisecond + state->rng.Below(700) * kMillisecond;
  sys.machine().events().ScheduleAfter(gap, [state] { InjectNextFault(state); });
}

// Tenant requests are too short-lived for the corruption poll below to catch
// one holding a multi-region address map, so the episode plants its own
// decoy on the victim cell: map two regions, hold them through a long
// compute, then touch them again. The post-hold touches walk the (by then
// corrupted) map and the careful-reference discipline excises the process.
void PlantAddrMapDecoy(const std::shared_ptr<SoakState>& state, CellId victim) {
  HiveSystem& sys = *state->sys;
  if (!sys.CellReachable(victim)) {
    return;
  }
  auto decoy = std::make_unique<workloads::ScriptedBehavior>("addrmap-decoy");
  constexpr hive::VirtAddr kDecoyBase = 0x50000000;
  constexpr uint64_t kPage = 4096;
  decoy->Add(workloads::OpMapAnon(kDecoyBase, 8 * kPage, /*writable=*/true));
  decoy->Add(workloads::OpMapAnon(kDecoyBase + (1 << 20), 4 * kPage,
                                  /*writable=*/true));
  decoy->Add(workloads::OpFaultRange(kDecoyBase, 8, /*write=*/true));
  decoy->Add(workloads::OpFaultRange(kDecoyBase + (1 << 20), 4, /*write=*/true));
  decoy->Add(workloads::OpCompute(200 * kMillisecond, 200 * kMillisecond));
  decoy->Add(workloads::OpTouchMapped(kDecoyBase, 8, /*write=*/true,
                                      /*misses_per_page=*/4));
  Cell& cell = sys.cell(victim);
  Ctx ctx = cell.MakeCtx();
  (void)sys.Fork(ctx, victim, std::move(decoy));
}

// Address-map corruption lands only once a victim process has built a
// multi-region map; retry until then or until the give-up time.
void TryAddrMapCorruption(const std::shared_ptr<SoakState>& state, CellId victim,
                          Time give_up) {
  HiveSystem& sys = *state->sys;
  if (!sys.CellReachable(victim)) {
    return;
  }
  Cell& cell = sys.cell(victim);
  for (hive::Process* proc : cell.sched().AllProcesses()) {
    if (proc->finished()) {
      continue;
    }
    Ctx ctx = cell.MakeCtx();
    auto regions = proc->address_space().ListRegions(ctx);
    if (regions.size() < 2) {
      continue;
    }
    flash::FaultInjector injector(&sys.machine(),
                                  state->opts->seed ^ state->episodes.size());
    Cell& other = sys.cell(static_cast<CellId>((victim + 1) % sys.num_cells()));
    injector.CorruptPointer(
        regions[0].entry_addr + hive::AddrMapEntryLayout::kNext,
        flash::PointerCorruptionMode::kRandomOtherCell, cell.mem_base(),
        cell.mem_size(), other.mem_base(), other.mem_size());
    state->episodes.back().landed = true;
    return;
  }
  if (sys.machine().Now() < give_up) {
    sys.machine().events().ScheduleAfter(10 * kMillisecond, [state, victim, give_up] {
      TryAddrMapCorruption(state, victim, give_up);
    });
  }
}

// A wild write from `victim` into the tenant file page cache of the next cell
// over. The firewall denies the store and the writer kernel panics -- damage
// contained to the writer, which recovery then excises and reboots.
void InjectWildWrite(const std::shared_ptr<SoakState>& state, CellId victim) {
  HiveSystem& sys = *state->sys;
  const CellId target = static_cast<CellId>((victim + 1) % sys.num_cells());
  if (!sys.CellReachable(victim) || !sys.CellReachable(target)) {
    return;
  }
  Cell& writer = sys.cell(victim);
  Cell& owner = sys.cell(target);
  // The tenant homed on the target cell (tenants are assigned round-robin, so
  // tenant id == cell id is always such a tenant).
  const TenantState& tenant = state->tenants[static_cast<size_t>(target)];
  Ctx tctx = owner.MakeCtx();
  auto handle = owner.fs().Open(tctx, tenant.data_path);
  if (!handle.ok()) {
    return;
  }
  auto page = owner.fs().GetPage(tctx, *handle, 0, /*want_write=*/false,
                                 hive::FileSystem::AccessPath::kSyscall);
  if (!page.ok()) {
    return;
  }
  std::vector<uint8_t> garbage(64);
  for (uint8_t& byte : garbage) {
    byte = static_cast<uint8_t>(state->rng.Next());
  }
  const int writer_cpu = sys.machine().FirstCpuOfNode(writer.first_node());
  state->episodes.back().landed = true;
  try {
    sys.machine().mem().Write(writer_cpu, (*page)->frame + 256, garbage);
    // hive-lint: allow(R3): injected wild write from the soak harness; the firewall trap becomes the writer kernel's panic, as section 4.1 prescribes.
  } catch (const flash::BusError&) {
    std::ostringstream reason;
    reason << "wild write into cell " << target << " denied by firewall";
    writer.Panic(reason.str());
  }
}

// Seed-driven kill/rejoin cycles (the reboot-storm family, compressed): kill
// the victim, wait for auto-reintegration to restore it, kill the next.
void DriveRebootStorm(const std::shared_ptr<SoakState>& state, int cycle,
                      CellId victim, Time until);

void WaitForStormRejoin(const std::shared_ptr<SoakState>& state, int cycle,
                        CellId victim, Time until) {
  HiveSystem& sys = *state->sys;
  if (sys.machine().Now() >= until) {
    return;
  }
  if (!sys.CellReachable(victim) || sys.CellConfirmedFailed(victim) ||
      sys.cell(victim).in_recovery()) {
    sys.machine().events().ScheduleAfter(2 * kMillisecond, [state, cycle, victim, until] {
      WaitForStormRejoin(state, cycle, victim, until);
    });
    return;
  }
  const CellId next = static_cast<CellId>((victim + 1) % sys.num_cells());
  const Time gap = state->rng.OneIn(3)
                       ? 1 * kMillisecond
                       : static_cast<Time>(10 + state->rng.Below(40)) * kMillisecond;
  sys.machine().events().ScheduleAfter(gap, [state, cycle, next, until] {
    DriveRebootStorm(state, cycle + 1, next, until);
  });
}

void DriveRebootStorm(const std::shared_ptr<SoakState>& state, int cycle,
                      CellId victim, Time until) {
  HiveSystem& sys = *state->sys;
  if (cycle >= 2 || sys.machine().Now() >= until) {
    return;
  }
  if (!sys.CellReachable(victim) || sys.cell(victim).in_recovery() ||
      sys.LiveCells().size() < 3) {
    sys.machine().events().ScheduleAfter(2 * kMillisecond, [state, cycle, victim, until] {
      DriveRebootStorm(state, cycle, victim, until);
    });
    return;
  }
  sys.machine().FailNode(sys.cell(victim).first_node());
  state->episodes.back().landed = true;
  WaitForStormRejoin(state, cycle, victim, until);
}

void InjectNextFault(const std::shared_ptr<SoakState>& state) {
  HiveSystem& sys = *state->sys;
  const ServeOptions& opts = *state->opts;
  const Time now = sys.machine().Now();
  if (now >= opts.duration_ns) {
    return;  // No fresh fault pressure during the drain window.
  }
  const FaultKind kind = kRotation[state->rotation_index % kRotationSize];
  ++state->rotation_index;
  const CellId victim =
      static_cast<CellId>(state->rng.Below(static_cast<uint64_t>(sys.num_cells())));

  FaultEpisode episode;
  episode.kind = kind;
  episode.victim = victim;
  episode.injected_at = now;
  state->episodes.push_back(episode);
  state->episode_open = true;

  Time settle = 50 * kMillisecond;   // Earliest resolution check.
  Time give_up = now + 4 * kSecond;  // Close the episode even if never whole.
  switch (kind) {
    case FaultKind::kNodeFailure:
      if (sys.CellReachable(victim) && sys.LiveCells().size() >= 3) {
        sys.machine().FailNode(sys.cell(victim).first_node());
        state->episodes.back().landed = true;
      }
      break;
    case FaultKind::kAddrMapCorruption:
      PlantAddrMapDecoy(state, victim);
      TryAddrMapCorruption(state, victim, now + 400 * kMillisecond);
      settle = 450 * kMillisecond;  // Give the corruption time to be walked.
      break;
    case FaultKind::kWildWrite:
      InjectWildWrite(state, victim);
      break;
    case FaultKind::kFalseAccusation: {
      const CellId accused = static_cast<CellId>((victim + 1) % sys.num_cells());
      if (sys.CellReachable(victim) && sys.CellReachable(accused)) {
        Ctx ctx = sys.cell(victim).MakeCtx();
        sys.HandleAlert(ctx, victim, accused, hive::HintReason::kRpcTimeout);
        state->episodes.back().landed = true;
      }
      settle = 20 * kMillisecond;
      break;
    }
    case FaultKind::kMessageFaults: {
      flash::Sips& sips = sys.machine().sips();
      if (sips.fault_model() == nullptr) {
        sips.EnableFaultModel(opts.seed ^ 0x6D7367666Cull);
      }
      flash::MessageFaultPlan plan;
      plan.start = now;
      plan.end = now + 400 * kMillisecond;
      plan.drop_pm = 25;
      plan.dup_pm = 15;
      plan.delay_pm = 40;
      plan.corrupt_pm = 10;
      plan.delay_max_ns = 30 * hive::kMicrosecond;  // Under the RPC spin window.
      sips.fault_model()->AddPlan(plan);
      state->episodes.back().landed = true;
      settle = 420 * kMillisecond;  // The window must fully pass.
      break;
    }
    case FaultKind::kRogueCell: {
      if (sys.CellReachable(victim)) {
        hive::RogueBehavior behavior;
        behavior.active = true;
        behavior.rpc_garbage = true;  // Heartbeats surface the scribbles.
        behavior.garbage_seed = opts.seed ^ (0x90609ull << 32) ^ state->episodes.size();
        sys.cell(victim).SetRogueBehavior(behavior);
        state->episodes.back().landed = true;
      }
      break;
    }
    case FaultKind::kRebootStorm:
      DriveRebootStorm(state, /*cycle=*/0, victim, now + 2 * kSecond);
      give_up = now + 6 * kSecond;
      break;
  }
  PollEpisodeResolved(state, now + settle, give_up);
}

// ---------------------------------------------------------------------------
// Fingerprint + SLO verdict.
// ---------------------------------------------------------------------------

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t Fnv1a(uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t ComputeFingerprint(const ServeResult& result, HiveSystem& sys) {
  uint64_t hash = 0xCBF29CE484222325ull;
  hash = Fnv1a(hash, result.options.seed);
  hash = Fnv1a(hash, static_cast<uint64_t>(result.end_time));
  hash = Fnv1a(hash, result.submitted);
  hash = Fnv1a(hash, result.completed);
  hash = Fnv1a(hash, result.shed);
  hash = Fnv1a(hash, result.unroutable);
  hash = Fnv1a(hash, result.lost);
  hash = Fnv1a(hash, result.hung);
  if (!result.latency.empty()) {
    hash = Fnv1a(hash, result.latency.count());
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.sum()));
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.min()));
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.max()));
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.Percentile(50)));
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.Percentile(99)));
    hash = Fnv1a(hash, static_cast<uint64_t>(result.latency.Percentile(99.9)));
  }
  for (const ServeCellSummary& cell : result.cells) {
    hash = Fnv1a(hash, cell.submitted);
    hash = Fnv1a(hash, cell.completed);
    hash = Fnv1a(hash, cell.shed);
    hash = Fnv1a(hash, static_cast<uint64_t>(cell.down_ns));
    hash = Fnv1a(hash, static_cast<uint64_t>(cell.suspended_ns));
  }
  for (const FaultEpisode& episode : result.episodes) {
    hash = Fnv1a(hash, static_cast<uint64_t>(FamilyIndex(episode.kind)));
    hash = Fnv1a(hash, static_cast<uint64_t>(episode.victim));
    hash = Fnv1a(hash, static_cast<uint64_t>(episode.injected_at));
    hash = Fnv1a(hash, static_cast<uint64_t>(episode.resolved_at));
    hash = Fnv1a(hash, episode.completed_during);
    hash = Fnv1a(hash, episode.landed ? 1u : 0u);
  }
  for (Time duration : result.recovery_durations) {
    hash = Fnv1a(hash, static_cast<uint64_t>(duration));
  }
  hash = Fnv1a(hash, static_cast<uint64_t>(result.recoveries_run));
  hash = Fnv1a(hash, static_cast<uint64_t>(result.reintegrations));
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    Cell& cell = sys.cell(c);
    uint64_t cell_state = cell.alive() ? 1u : 0u;
    cell_state |= cell.in_recovery() ? 2u : 0u;
    cell_state |= sys.CellConfirmedFailed(c) ? 4u : 0u;
    hash = Fnv1a(hash, cell_state);
    hash = Fnv1a(hash, cell.panic_reason());
  }
  for (const std::string& violation : result.violations) {
    hash = Fnv1a(hash, violation);
  }
  return hash;
}

void JudgeSlos(ServeResult& result) {
  const ServeOptions& opts = result.options;
  for (size_t c = 0; c < result.cells.size(); ++c) {
    if (result.cells[c].availability < opts.availability_floor) {
      std::ostringstream out;
      out << "availability-floor: cell " << c << " availability "
          << result.cells[c].availability << " below floor " << opts.availability_floor;
      result.violations.push_back(out.str());
    }
  }
  if (!result.latency.empty() &&
      result.latency.Percentile(99.9) > static_cast<int64_t>(opts.latency_p999_bound_ns)) {
    std::ostringstream out;
    out << "latency-p999: " << result.latency.Percentile(99.9) / 1000000
        << " ms exceeds bound " << opts.latency_p999_bound_ns / 1000000 << " ms";
    result.violations.push_back(out.str());
  }
  if (result.hung > 0) {
    std::ostringstream out;
    out << "no-hung-request: " << result.hung
        << " request(s) neither completed nor killed by the end of the drain window";
    result.violations.push_back(out.str());
  }
  for (size_t i = 0; i < result.recovery_durations.size(); ++i) {
    if (result.recovery_durations[i] > opts.recovery_bound_ns) {
      std::ostringstream out;
      out << "recovery-time: episode " << i << " took "
          << result.recovery_durations[i] / 1000000 << " ms, bound "
          << opts.recovery_bound_ns / 1000000 << " ms";
      result.violations.push_back(out.str());
    }
  }
}

std::string RenderSloSummary(const ServeResult& result) {
  base::Table table({"Cell", "Submitted", "Completed", "Shed", "Down (ms)",
                     "Frozen (ms)", "Availability", "Max-runq"});
  for (size_t c = 0; c < result.cells.size(); ++c) {
    const ServeCellSummary& cell = result.cells[c];
    table.AddRow({"cell " + base::Table::I64(static_cast<int64_t>(c)),
                  base::Table::I64(static_cast<int64_t>(cell.submitted)),
                  base::Table::I64(static_cast<int64_t>(cell.completed)),
                  base::Table::I64(static_cast<int64_t>(cell.shed)),
                  base::Table::F64(static_cast<double>(cell.down_ns) / 1e6, 1),
                  base::Table::F64(static_cast<double>(cell.suspended_ns) / 1e6, 1),
                  base::Table::F64(cell.availability, 4),
                  base::Table::I64(static_cast<int64_t>(cell.max_runnable))});
  }
  std::ostringstream out;
  out << table.Render("Service SLO summary (per cell)");
  if (!result.latency.empty()) {
    out << "latency (ms): p50="
        << base::Table::F64(static_cast<double>(result.latency.Percentile(50)) / 1e6, 3)
        << " p99="
        << base::Table::F64(static_cast<double>(result.latency.Percentile(99)) / 1e6, 3)
        << " p999="
        << base::Table::F64(static_cast<double>(result.latency.Percentile(99.9)) / 1e6, 3)
        << " max="
        << base::Table::F64(static_cast<double>(result.latency.max()) / 1e6, 3) << "\n";
  }
  out << "faults: " << result.episodes.size() << " episode(s), "
      << result.episodes_landed << " landed; requests/fault="
      << base::Table::F64(result.requests_per_fault, 1) << "\n";
  return out.str();
}

}  // namespace

ServeResult RunSoak(const ServeOptions& options) {
  ServeResult result;
  result.options = options;

  ServeOptions opts = options;
  opts.tenants = std::max(opts.tenants, opts.num_cells);
  if (opts.bug == "no_shed") {
    opts.admit_runq_watermark = 0;
    opts.admit_heap_watermark_bytes = 0;
  }

  flash::Machine machine(SoakConfig(opts.num_cells), opts.seed);
  // Same parallel grid as the campaign: outcomes are a function of the seed
  // alone, never of --sim-threads (the fingerprint-equality oracle pins it).
  machine.EnableParallelSim(opts.sim_threads,
                            hive::KernelCosts{}.clock_tick_period_ns / 10);
  HiveOptions hive_options;
  hive_options.num_cells = opts.num_cells;
  hive_options.auto_reintegrate = true;
  hive_options.salvage_pages = true;
  hive_options.live_rejoin = true;
  hive_options.admit_runq_watermark = opts.admit_runq_watermark;
  hive_options.admit_heap_watermark_bytes = opts.admit_heap_watermark_bytes;
  if (opts.bug == "slow_recovery") {
    hive_options.costs.recovery_per_page_scan_ns *= 1000;
  }
  HiveSystem sys(&machine, hive_options);
  hive::SloRecorder slo(static_cast<size_t>(opts.num_cells));
  sys.set_slo_recorder(&slo);
  sys.Boot();

  auto state = std::make_shared<SoakState>();
  state->sys = &sys;
  state->opts = &opts;
  state->slo = &slo;
  state->rng = base::Rng(opts.seed ^ 0x5E27Eull);

  // Tenants: homes round-robin across cells, half hot. Each gets a pattern
  // file on its home cell before the clock starts.
  for (int t = 0; t < opts.tenants; ++t) {
    TenantState tenant;
    tenant.id = t;
    tenant.home = static_cast<CellId>(t % opts.num_cells);
    tenant.hot = t % 2 == 0;
    tenant.file_seed = opts.seed ^ (0x7E4A47ull + static_cast<uint64_t>(t));
    tenant.data_path = "/serve/tenant-" + std::to_string(t);
    Cell& home = sys.cell(tenant.home);
    Ctx ctx = home.MakeCtx();
    auto created = home.fs().Create(
        ctx, tenant.data_path, workloads::PatternData(tenant.file_seed, kTenantFileSize));
    CHECK(created.ok());
    state->tenants.push_back(tenant);
  }

  // Drivers: request pump, health plane, probe traffic, overload bursts, and
  // the rotating background fault plan.
  machine.events().ScheduleAt(10 * kMillisecond, [state] { PumpRequests(state); });
  machine.events().ScheduleAt(20 * kMillisecond, [state] { DriveHeartbeats(state); });
  machine.events().ScheduleAt(25 * kMillisecond, [state] { ProbeIntercellRpc(state); });
  machine.events().ScheduleAt(12 * kSecond, [state] { OverloadBurst(state, 0); });
  machine.events().ScheduleAt(1 * kSecond, [state] { InjectNextFault(state); });

  const Time end_time = opts.duration_ns + opts.drain_ns;
  machine.RunUntil(end_time);
  result.end_time = end_time;
  slo.Finish(end_time);

  // Classify every submitted request: completed, lost to a fault (killed or
  // died with its cell -- the fault plan's collateral), or hung (the SLO
  // violation: still pending after the drain window).
  for (const RequestRecord& request : state->requests) {
    ++result.submitted;
    if (request.completed) {
      ++result.completed;
    } else if (sys.ProcessFinished(request.pid)) {
      ++result.lost;
    } else {
      ++result.hung;
    }
  }
  result.unroutable = state->unroutable;
  result.episodes = state->episodes;
  result.per_family.assign(std::size(campaign::kAllFaultKinds), 0);
  for (const FaultEpisode& episode : result.episodes) {
    if (episode.landed) {
      ++result.episodes_landed;
      ++result.per_family[FamilyIndex(episode.kind)];
    }
  }
  result.requests_per_fault =
      result.episodes_landed == 0
          ? static_cast<double>(result.completed)
          : static_cast<double>(result.completed) /
                static_cast<double>(result.episodes_landed);

  for (CellId c = 0; c < sys.num_cells(); ++c) {
    const hive::CellSloStats& stats = slo.cell(static_cast<size_t>(c));
    ServeCellSummary summary;
    summary.submitted = stats.submitted;
    summary.completed = stats.completed;
    summary.shed = stats.shed;
    summary.down_ns = stats.down_ns;
    summary.suspended_ns = stats.suspended_ns;
    summary.availability = slo.Availability(static_cast<size_t>(c), end_time);
    summary.max_runnable =
        sys.cell(c).alive() ? sys.cell(c).sched().max_runnable() : 0;
    result.availability_min = std::min(result.availability_min, summary.availability);
    result.shed += summary.shed;
    result.latency.Merge(stats.latency);
    result.cells.push_back(summary);
  }

  for (const hive::RecoveryStats& episode : sys.recovery().episodes()) {
    result.recovery_durations.push_back(episode.duration_ns);
  }
  result.recoveries_run = sys.recovery().recoveries_run();
  result.reintegrations = static_cast<int>(sys.recovery().reintegration_log().size());

  JudgeSlos(result);
  result.fingerprint = ComputeFingerprint(result, sys);

  std::ostringstream report;
  report << hive::RenderSystemReport(sys);
  report << hive::RenderRecoveryEpisodes(sys);
  report << RenderSloSummary(result);
  result.report = report.str();
  return result;
}

}  // namespace serve
