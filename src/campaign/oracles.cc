#include "src/campaign/oracles.h"

#include <sstream>

#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/invariant_checker.h"
#include "src/core/recovery.h"
#include "src/core/rpc.h"
#include "src/core/trace.h"
#include "src/flash/bus_error.h"
#include "src/workloads/workload.h"

namespace campaign {
namespace {

using hive::Cell;
using hive::CellId;
using hive::Ctx;
using hive::HiveSystem;
using hive::TraceEvent;
using hive::TraceRecord;

// A panicked or silently-halted cell is only *expected* to be confirmed
// failed once clock monitoring had time to notice: the stall threshold plus a
// few monitoring periods. Deaths inside this window at scenario end are not
// detection failures.
constexpr Time kDetectionGraceNs = 300 * hive::kMillisecond;

// A started reintegration must reach a terminal state (done, re-excised, or
// failed) within this much simulated time; a rejoin is a bounded sequence of
// pings, export re-imports and frame borrows, not an open-ended negotiation.
constexpr Time kReintegrationBoundNs = 300 * hive::kMillisecond;

void Add(std::vector<OracleViolation>* out, const std::string& oracle,
         const std::string& detail) {
  out->push_back(OracleViolation{oracle, detail});
}

// Time of the last death-related trace record of a cell (panic or hardware
// death), or -1 if it never died.
Time LastDeathTime(Cell& cell) {
  Time when = -1;
  for (const TraceRecord& record : cell.trace().Snapshot()) {
    if (record.event == TraceEvent::kPanic || record.event == TraceEvent::kMarkedDead) {
      when = std::max(when, record.when);
    }
  }
  return when;
}

}  // namespace

void CheckContainmentAndDetection(const OracleInput& input,
                                  std::vector<OracleViolation>* out) {
  const ScenarioSpec& spec = *input.spec;
  HiveSystem& sys = *input.system;
  const Time now = sys.machine().Now();

  // Expected outcome per cell, from the faults that actually landed.
  std::vector<bool> must_die(static_cast<size_t>(spec.num_cells), false);
  std::vector<bool> may_die(static_cast<size_t>(spec.num_cells), false);
  int expected_recoveries = 0;
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    if (i < input.injected.size() && !input.injected[i]) {
      continue;
    }
    const FaultSpec& fault = spec.faults[i];
    const auto victim = static_cast<size_t>(fault.victim);
    switch (fault.kind) {
      case FaultKind::kNodeFailure:
        must_die[victim] = true;
        ++expected_recoveries;
        break;
      case FaultKind::kAddrMapCorruption:
        // The corrupt pointer kills the victim only when a fault path walks
        // past it before the workload drains.
        may_die[victim] = true;
        break;
      case FaultKind::kWildWrite:
        if (spec.disable_firewall) {
          // The store lands silently; the writer has no reason to die.
        } else {
          // The firewall denies the store; the bus error panics the writer.
          must_die[victim] = true;
        }
        break;
      case FaultKind::kFalseAccusation:
        // Nobody may die because of a vetoed accusation.
        break;
      case FaultKind::kMessageFaults:
        // The reliable transport must ride out message faults; nobody dies.
        break;
      case FaultKind::kRogueCell:
        // The survivors must detect the Byzantine cell and excise it.
        must_die[victim] = true;
        break;
      case FaultKind::kRebootStorm:
        // Victims rotate by seed and timing, so any cell may legitimately
        // die (and come back) during the storm window. At least the first
        // kill is guaranteed once the fault is recorded as landed.
        std::fill(may_die.begin(), may_die.end(), true);
        ++expected_recoveries;
        break;
    }
  }

  // Detection and agreement need at least one surviving cell to run. A
  // multi-fault plan can kill every cell of a 2-cell hive (each death
  // individually contained); nobody is left to confirm the last death.
  bool any_survivor = false;
  for (CellId c = 0; c < spec.num_cells; ++c) {
    any_survivor = any_survivor || (sys.cell(c).alive() && sys.CellReachable(c));
  }

  for (CellId c = 0; c < spec.num_cells; ++c) {
    Cell& cell = sys.cell(c);
    const auto idx = static_cast<size_t>(c);
    if (cell.alive()) {
      if (must_die[idx] && !spec.auto_reintegrate) {
        std::ostringstream detail;
        detail << "cell " << c << " took a fail-stop fault but is still alive";
        Add(out, "detection-complete", detail.str());
      }
      continue;
    }
    // A dead cell must be an intended victim: anything else means the fault
    // escaped its cell.
    if (!must_die[idx] && !may_die[idx]) {
      std::ostringstream detail;
      detail << "non-faulted cell " << c << " died"
             << (cell.panic_reason().empty() ? "" : " (panic: " + cell.panic_reason() + ")");
      Add(out, "fault-containment", detail.str());
      continue;
    }
    // ... and its death must have been detected and agreed on, unless it died
    // too close to scenario end for clock monitoring to have noticed, or no
    // cell survived to run the agreement.
    if (!sys.CellConfirmedFailed(c) && any_survivor) {
      const Time died_at = LastDeathTime(cell);
      const bool hardware_dead = sys.machine().NodeDead(cell.first_node());
      if ((died_at >= 0 && now - died_at > kDetectionGraceNs) ||
          (died_at < 0 && hardware_dead)) {
        std::ostringstream detail;
        detail << "cell " << c << " died at t=" << died_at / hive::kMillisecond
               << "ms but was never confirmed failed by t=" << now / hive::kMillisecond
               << "ms";
        Add(out, "detection-complete", detail.str());
      }
    }
  }

  // Reintegration scenarios: victims may be alive again, but every fail-stop
  // fault must still have produced a recovery round.
  if (spec.auto_reintegrate && any_survivor &&
      sys.recovery().recoveries_run() < expected_recoveries) {
    std::ostringstream detail;
    detail << "expected >= " << expected_recoveries << " recoveries for "
           << expected_recoveries << " fail-stop faults, ran "
           << sys.recovery().recoveries_run();
    Add(out, "detection-complete", detail.str());
  }
}

void CheckRecoveryBarriers(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  if (sys.recovery().recoveries_run() == 0) {
    return;
  }
  const hive::RecoveryStats& stats = sys.recovery().last_stats();
  if (stats.barrier1_time < stats.detect_time) {
    Add(out, "recovery-barriers", "barrier 1 completed before detection");
  }
  if (stats.barrier2_time < stats.barrier1_time) {
    Add(out, "recovery-barriers", "barrier 2 completed before barrier 1");
  }
  if (stats.entered_recovery.empty()) {
    Add(out, "recovery-barriers", "no cell entered the last recovery round");
  }
  if (stats.recovery_master == hive::kInvalidCell) {
    Add(out, "recovery-barriers", "no recovery master elected");
  }
  for (CellId c : sys.LiveCells()) {
    if (sys.cell(c).in_recovery()) {
      std::ostringstream detail;
      detail << "cell " << c << " still flagged in_recovery at scenario end";
      Add(out, "recovery-barriers", detail.str());
    }
  }
}

void CheckFirewallInvariants(const OracleInput& input, std::vector<OracleViolation>* out) {
  // AuditAll self-skips when firewall checking is disabled (the wild-write
  // fixture); the canary oracle carries the detection burden there.
  hive::InvariantChecker checker(input.system);
  const hive::InvariantReport report = checker.AuditAll(/*raise_hints=*/false);
  for (const hive::InvariantMismatch& mismatch : report.mismatches) {
    Add(out, "firewall-invariants", mismatch.ToString());
  }
}

void CheckNoStaleExports(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  uint64_t failed_mask = 0;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!sys.cell(c).alive()) {
      failed_mask |= 1ull << c;
    }
  }
  if (failed_mask == 0) {
    return;
  }
  for (CellId c : sys.LiveCells()) {
    Cell& cell = sys.cell(c);
    cell.pfdats().ForEach([&](hive::Pfdat* pfdat) {
      if ((pfdat->exported_writable & failed_mask) != 0) {
        std::ostringstream detail;
        detail << "cell " << c << " frame 0x" << std::hex << pfdat->frame << std::dec
               << " still exported writable to a failed cell after recovery";
        Add(out, "no-stale-exports", detail.str());
      } else if ((pfdat->exported_to & failed_mask) != 0) {
        std::ostringstream detail;
        detail << "cell " << c << " frame 0x" << std::hex << pfdat->frame << std::dec
               << " still exported to a failed cell after recovery";
        Add(out, "no-stale-exports", detail.str());
      }
      if (pfdat->imported_from != hive::kInvalidCell &&
          (failed_mask & (1ull << pfdat->imported_from)) != 0) {
        std::ostringstream detail;
        detail << "cell " << c << " still imports a page from failed cell "
               << pfdat->imported_from;
        Add(out, "no-stale-exports", detail.str());
      }
    });
  }
}

void CheckCanaries(const OracleInput& input, std::vector<OracleViolation>* out) {
  const CanaryState* canaries = input.canaries;
  if (canaries == nullptr) {
    return;
  }
  HiveSystem& sys = *input.system;
  for (const CanaryState::PerCell& canary : canaries->cells) {
    if (!canary.valid || canary.cross_reader == hive::kInvalidCell) {
      continue;
    }
    // Reachable, not merely alive(): a hardware-dead cell awaiting agreement
    // cannot execute reads.
    if (!sys.CellReachable(canary.cross_reader)) {
      continue;
    }
    Cell& reader = sys.cell(canary.cross_reader);
    // 1. The pre-fault handle: a read may fail (stale generation after a
    // discard, unreachable data home) but whatever it *returns as data* must
    // be the canary pattern -- stale or corrupt bytes served as fresh data is
    // exactly the undetected-corruption failure mode the firewall exists to
    // prevent.
    std::vector<uint8_t> buf(canary.size);
    Ctx ctx = reader.MakeCtx();
    base::Status status = base::CellFailed();
    try {
      status = reader.fs().Read(ctx, canary.cross_handle, 0, std::span<uint8_t>(buf));
      // hive-lint: allow(R3): campaign oracle probing a possibly-failed data home from the harness; unreadable is a legal outcome, recorded as Status.
    } catch (const flash::BusError&) {
      // Data home's memory failed mid-read: unreadable, a legal outcome.
    }
    if (status.ok() &&
        workloads::Checksum(buf) != workloads::PatternChecksum(canary.pattern_seed,
                                                               canary.size)) {
      std::ostringstream detail;
      detail << "pre-fault handle for " << canary.path
             << " served corrupted data as current (generation not bumped)";
      Add(out, "generation-consistency", detail.str());
    }
    // 2. A fresh open by a live reader: must also never yield corrupt bytes.
    Ctx fresh_ctx = reader.MakeCtx();
    std::fill(buf.begin(), buf.end(), 0);
    status = base::CellFailed();
    try {
      auto handle = reader.fs().Open(fresh_ctx, canary.path);
      if (!handle.ok()) {
        continue;  // Data home failed: unreadable is a legal outcome.
      }
      status = reader.fs().Read(fresh_ctx, *handle, 0, std::span<uint8_t>(buf));
      // hive-lint: allow(R3): campaign oracle probing a possibly-failed data home from the harness; unreadable is a legal outcome, recorded as Status.
    } catch (const flash::BusError&) {
    }
    if (status.ok() &&
        workloads::Checksum(buf) != workloads::PatternChecksum(canary.pattern_seed,
                                                               canary.size)) {
      std::ostringstream detail;
      detail << "fresh open of " << canary.path << " read corrupted data";
      Add(out, "generation-consistency", detail.str());
    }
  }
}

void CheckSurvivorsFunctional(const OracleInput& input,
                              std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  // Survivors = cells whose kernel AND hardware are up. A hardware-dead cell
  // still awaiting agreement is not expected to serve anything.
  std::vector<CellId> live;
  for (CellId c : sys.LiveCells()) {
    if (sys.CellReachable(c)) {
      live.push_back(c);
    }
  }
  if (live.empty()) {
    return;  // Every cell was independently faulted; nothing to promise.
  }
  const std::string path =
      "/campaign/post-" + std::to_string(input.spec->index) + "-check";
  const uint64_t size = 4096;
  const uint64_t pattern = input.spec->seed ^ 0x706f7374;
  try {
    Cell& writer = sys.cell(live.front());
    Ctx wctx = writer.MakeCtx();
    auto created = writer.fs().Create(wctx, path, workloads::PatternData(pattern, size));
    if (!created.ok()) {
      std::ostringstream detail;
      detail << "survivor cell " << live.front() << " cannot create files: "
             << created.status().name();
      Add(out, "survivors-functional", detail.str());
      return;
    }
    // Cross-cell read from the farthest survivor (same-cell when only one).
    Cell& reader = sys.cell(live.back());
    Ctx rctx = reader.MakeCtx();
    auto handle = reader.fs().Open(rctx, path);
    if (!handle.ok()) {
      std::ostringstream detail;
      detail << "survivor cell " << live.back() << " cannot open " << path << ": "
             << handle.status().name();
      Add(out, "survivors-functional", detail.str());
      return;
    }
    std::vector<uint8_t> buf(size);
    base::Status status = reader.fs().Read(rctx, *handle, 0, std::span<uint8_t>(buf));
    if (!status.ok() ||
        workloads::Checksum(buf) != workloads::PatternChecksum(pattern, size)) {
      std::ostringstream detail;
      detail << "survivor cell " << live.back() << " read of " << path
             << (status.ok() ? std::string(" returned corrupt data")
                             : " failed: " + std::string(status.name()));
      Add(out, "survivors-functional", detail.str());
    }
    // hive-lint: allow(R3): harness-level oracle; a bus error while exercising survivors is itself the containment violation being reported.
  } catch (const flash::BusError& error) {
    std::ostringstream detail;
    detail << "survivor file check hit a bus error: " << error.what();
    Add(out, "survivors-functional", detail.str());
  }
}

void CheckOutputs(const OracleInput& input, std::vector<OracleViolation>* out) {
  if (input.corrupt_outputs > 0) {
    std::ostringstream detail;
    detail << input.corrupt_outputs
           << " workload output file(s) failed validation on the surviving file server";
    Add(out, "output-integrity", detail.str());
  }
}

// Non-idempotent handlers must never re-execute a request, no matter how the
// substrate duplicated or the transport retransmitted it. The counter only
// moves when the replay cache sees an already-served sequence number and
// suppression is off (the no-dedup fixture), or if the cache logic regresses.
void CheckRpcAtMostOnce(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    const hive::RpcCallStats& stats = sys.cell(c).rpc().stats();
    if (stats.at_most_once_violations > 0) {
      std::ostringstream detail;
      detail << "cell " << c << " re-executed " << stats.at_most_once_violations
             << " non-idempotent request(s)";
      Add(out, "rpc-at-most-once", detail.str());
    }
  }
}

// Every acknowledged mutation was executed: a client may only see OK for an
// at-most-once call if the server ran the handler (executions without an ack
// -- a lost reply -- are fine; acks without an execution are lost writes).
// Only airtight while no cell died or rebooted: a reboot resets the
// server-side execution counters.
void CheckRpcNoLostAck(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  if (sys.recovery().recoveries_run() > 0) {
    return;
  }
  uint64_t acked = 0;
  uint64_t executed = 0;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!sys.cell(c).alive()) {
      return;
    }
    const hive::RpcCallStats& stats = sys.cell(c).rpc().stats();
    acked += stats.acked_mutations;
    executed += stats.executed_mutations;
  }
  if (acked > executed) {
    std::ostringstream detail;
    detail << "clients saw " << acked << " acknowledged mutation(s) but servers "
           << "executed only " << executed;
    Add(out, "rpc-no-lost-ack", detail.str());
  }
}

// Graceful degradation: message faults alone must never cost a cell its
// life or leave the hive wedged in recovery -- the transport retries, and
// quarantine resolves once agreement clears the suspect.
void CheckRpcLiveness(const OracleInput& input, std::vector<OracleViolation>* out) {
  const ScenarioSpec& spec = *input.spec;
  bool any_message = false;
  for (const FaultSpec& fault : spec.faults) {
    if (fault.kind != FaultKind::kMessageFaults) {
      return;  // Another fault kind may legitimately kill cells.
    }
    any_message = true;
  }
  if (!any_message) {
    return;
  }
  HiveSystem& sys = *input.system;
  for (CellId c = 0; c < spec.num_cells; ++c) {
    Cell& cell = sys.cell(c);
    if (!cell.alive() || !sys.CellReachable(c)) {
      std::ostringstream detail;
      detail << "cell " << c << " died under message faults alone"
             << (cell.panic_reason().empty() ? ""
                                             : " (panic: " + cell.panic_reason() + ")");
      Add(out, "rpc-liveness", detail.str());
    }
  }
}

// A quarantine is an escalated failure-detector judgement; it must never
// happen silently. Any cell that quarantined a peer must have raised at
// least one detector hint (the hint precedes the escalation by design).
void CheckQuarantineImpliesHint(const OracleInput& input,
                                std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    Cell& cell = sys.cell(c);
    const hive::RpcCallStats& stats = cell.rpc().stats();
    if (stats.quarantines_entered > 0 && cell.detector().hints_raised() == 0) {
      std::ostringstream detail;
      detail << "cell " << c << " entered " << stats.quarantines_entered
             << " quarantine(s) without ever raising a detector hint";
      Add(out, "quarantine-implies-hint", detail.str());
    }
  }
}

// A rogue cell (alive but Byzantine) must be detected and excised within the
// detection bound of its injection: every misbehaviour axis has a detector
// whose latency is far below the grace window (clock stale/drift windows,
// structure-prober cadence, heartbeat retries, babble throttle, accusation
// strikes).
void CheckRogueDetection(const OracleInput& input, std::vector<OracleViolation>* out) {
  const ScenarioSpec& spec = *input.spec;
  HiveSystem& sys = *input.system;
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& fault = spec.faults[i];
    if (fault.kind != FaultKind::kRogueCell ||
        (i < input.injected.size() && !input.injected[i])) {
      continue;
    }
    if (!sys.CellConfirmedFailed(fault.victim)) {
      std::ostringstream detail;
      detail << "rogue cell " << fault.victim << " (axes "
             << RogueAxesToString(fault.rogue_axes) << ") was never excised";
      Add(out, "rogue-detected", detail.str());
      continue;
    }
    // Excision time: the kCellExcised record the survivors traced. The rogue
    // itself may carry no such record (it is dead by then).
    Time excised_at = -1;
    for (CellId c = 0; c < spec.num_cells; ++c) {
      for (const TraceRecord& record : sys.cell(c).trace().Snapshot()) {
        if (record.event == TraceEvent::kCellExcised &&
            record.arg0 == static_cast<uint64_t>(fault.victim)) {
          excised_at = excised_at < 0 ? record.when : std::min(excised_at, record.when);
        }
      }
    }
    if (excised_at >= 0 && excised_at - fault.inject_at > kDetectionGraceNs) {
      std::ostringstream detail;
      detail << "rogue cell " << fault.victim << " excised only at t="
             << excised_at / hive::kMillisecond << "ms, "
             << (excised_at - fault.inject_at) / hive::kMillisecond
             << "ms after injection (bound " << kDetectionGraceNs / hive::kMillisecond
             << "ms)";
      Add(out, "rogue-detected", detail.str());
    }
  }
}

// Survivors must never hang while inspecting a rogue's memory: every remote
// structure traversal stays within a sane hop bound and no agreement round
// consumes unbounded time (a mute voter costs one vote timeout, a cyclic
// chain is cut by the hop bound / cycle detection).
void CheckNoSurvivorHang(const OracleInput& input, std::vector<OracleViolation>* out) {
  const ScenarioSpec& spec = *input.spec;
  if (!spec.rogue_only && !spec.healthy_baseline) {
    return;
  }
  constexpr int kMaxSaneHops = 64;
  constexpr Time kMaxRoundCostNs = 100 * hive::kMillisecond;
  HiveSystem& sys = *input.system;
  for (CellId c : sys.LiveCells()) {
    const int hops = sys.cell(c).detector().max_traversal_hops();
    if (hops > kMaxSaneHops) {
      std::ostringstream detail;
      detail << "cell " << c << " walked a remote structure for " << hops
             << " hops (bound " << kMaxSaneHops << "): survivor hung on rogue memory";
      Add(out, "no-survivor-hang", detail.str());
    }
  }
  if (sys.agreement().max_round_cost_ns() > kMaxRoundCostNs) {
    std::ostringstream detail;
    detail << "an agreement round consumed "
           << sys.agreement().max_round_cost_ns() / hive::kMillisecond
           << "ms (bound " << kMaxRoundCostNs / hive::kMillisecond << "ms)";
    Add(out, "no-survivor-hang", detail.str());
  }
}

// No healthy cell may ever be excised: in rogue scenarios only the rogue may
// be confirmed failed, and in the healthy baseline (same geometry, same
// detectors, zero faults) there must be no excision at all -- the sensitivity
// proof that the hardened detectors do not false-positive.
void CheckNoFalseExcision(const OracleInput& input, std::vector<OracleViolation>* out) {
  const ScenarioSpec& spec = *input.spec;
  if (!spec.rogue_only && !spec.healthy_baseline) {
    return;
  }
  HiveSystem& sys = *input.system;
  for (CellId c = 0; c < spec.num_cells; ++c) {
    if (!sys.CellConfirmedFailed(c)) {
      continue;
    }
    bool is_rogue = false;
    for (size_t i = 0; i < spec.faults.size(); ++i) {
      is_rogue = is_rogue || (spec.faults[i].kind == FaultKind::kRogueCell &&
                              spec.faults[i].victim == c &&
                              (i >= input.injected.size() || input.injected[i]));
    }
    if (!is_rogue) {
      std::ostringstream detail;
      detail << "healthy cell " << c << " was excised"
             << (spec.healthy_baseline ? " in the zero-fault baseline" : "");
      Add(out, "no-false-excision", detail.str());
    }
  }
}

void CheckTraceConsistency(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  for (CellId c : sys.LiveCells()) {
    hive::TraceBuffer& trace = sys.cell(c).trace();
    const int enters = trace.Count(TraceEvent::kEnterRecovery);
    const int exits = trace.Count(TraceEvent::kExitRecovery);
    if (enters != exits) {
      std::ostringstream detail;
      detail << "cell " << c << " trace shows " << enters << " recovery entries but "
             << exits << " exits";
      Add(out, "trace-consistency", detail.str());
    }
  }
}

// Every salvaged page that backs a canary file must still hold the canary
// pattern. Adopting a frame the dead cell had actually scribbled is exactly
// the corruption leak the salvage proofs (firewall vector, content checksum)
// exist to prevent -- worse than a discard, because the corrupt bytes stay
// bound as current file content.
void CheckNoCorruptAdoption(const OracleInput& input, std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  const auto& log = sys.recovery().salvage_log();
  if (log.empty() || input.canaries == nullptr) {
    return;
  }
  const uint64_t page_size = sys.machine().mem().page_size();
  for (const CanaryState::PerCell& canary : input.canaries->cells) {
    if (!canary.valid) {
      continue;
    }
    auto file = sys.LookupPath(canary.path);
    if (!file.ok()) {
      continue;  // Canary's name vanished with its data home.
    }
    const std::vector<uint8_t> pattern =
        workloads::PatternData(canary.pattern_seed, canary.size);
    for (const hive::SalvageRecord& record : log) {
      if (record.lpid.kind != hive::LogicalPageId::Kind::kFile ||
          record.lpid.data_home != file->data_home ||
          record.lpid.object != static_cast<uint64_t>(file->vnode)) {
        continue;
      }
      const uint64_t byte_off = record.lpid.page_offset * page_size;
      if (byte_off >= canary.size) {
        continue;  // Page past the patterned range (zero fill): nothing to compare.
      }
      const uint64_t n = std::min(page_size, canary.size - byte_off);
      std::vector<uint8_t> buf(n);
      try {
        sys.machine().mem().DmaRead(sys.cell(record.owner).first_node(), record.frame,
                                    std::span<uint8_t>(buf));
        // hive-lint: allow(R3): campaign oracle re-reading a salvaged frame whose owner may have died later; unreadable is a legal outcome.
      } catch (const flash::BusError&) {
        continue;  // The adopting cell's memory failed later; nothing served.
      }
      if (!std::equal(buf.begin(), buf.end(),
                      pattern.begin() + static_cast<ptrdiff_t>(byte_off))) {
        std::ostringstream detail;
        detail << "cell " << record.owner << " salvaged page " << record.lpid.page_offset
               << " of " << canary.path << " with corrupt content (firewall_proof="
               << record.firewall_proof << " checksum_proof=" << record.checksum_proof
               << ")";
        Add(out, "no-corrupt-adoption", detail.str());
      }
    }
  }
}

// Every reintegration that started must converge: finish its rejoin within
// the bound, re-excise the cell (killed again mid-rejoin), or fail loudly.
// A silently stuck half-member -- rebooted but never again a full peer -- is
// the failure mode live rejoin under load can introduce.
void CheckReintegrationConverges(const OracleInput& input,
                                 std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  const Time now = sys.machine().Now();
  for (const hive::ReintegrationRecord& record : sys.recovery().reintegration_log()) {
    if (record.failed || record.re_excised) {
      continue;  // Loud terminal outcomes; fault-containment judges the cell state.
    }
    if (record.done_at == 0) {
      if (now - record.started_at > kReintegrationBoundNs) {
        std::ostringstream detail;
        detail << "reintegration of cell " << record.cell << " started at t="
               << record.started_at << "ns never converged";
        Add(out, "reintegration-converges", detail.str());
      }
      continue;
    }
    if (record.done_at - record.started_at > kReintegrationBoundNs) {
      std::ostringstream detail;
      detail << "reintegration of cell " << record.cell << " took "
             << (record.done_at - record.started_at) << "ns (bound "
             << kReintegrationBoundNs << "ns)";
      Add(out, "reintegration-converges", detail.str());
    }
  }
}

// No frame an injected wild write actually landed in may ever be salvaged:
// whatever the proofs concluded, that frame provably holds garbage.
void CheckSalvageContainment(const OracleInput& input,
                             std::vector<OracleViolation>* out) {
  HiveSystem& sys = *input.system;
  for (const hive::SalvageRecord& record : sys.recovery().salvage_log()) {
    for (hive::PhysAddr frame : input.wild_write_frames) {
      if (record.frame == frame) {
        std::ostringstream detail;
        detail << "frame 0x" << std::hex << frame << std::dec
               << " took a wild write but was salvaged by cell " << record.owner
               << " (firewall_proof=" << record.firewall_proof
               << " checksum_proof=" << record.checksum_proof << ")";
        Add(out, "salvage-containment", detail.str());
      }
    }
  }
}

std::vector<OracleViolation> CheckAllOracles(const OracleInput& input) {
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(input, &violations);
  CheckRecoveryBarriers(input, &violations);
  CheckFirewallInvariants(input, &violations);
  CheckNoStaleExports(input, &violations);
  CheckCanaries(input, &violations);
  CheckSurvivorsFunctional(input, &violations);
  CheckOutputs(input, &violations);
  CheckRpcAtMostOnce(input, &violations);
  CheckRpcNoLostAck(input, &violations);
  CheckRpcLiveness(input, &violations);
  CheckQuarantineImpliesHint(input, &violations);
  CheckRogueDetection(input, &violations);
  CheckNoSurvivorHang(input, &violations);
  CheckNoFalseExcision(input, &violations);
  CheckTraceConsistency(input, &violations);
  CheckNoCorruptAdoption(input, &violations);
  CheckReintegrationConverges(input, &violations);
  CheckSalvageContainment(input, &violations);
  return violations;
}

}  // namespace campaign
