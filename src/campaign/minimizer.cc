#include "src/campaign/minimizer.h"

#include <algorithm>

namespace campaign {
namespace {

// Budgeted wrapper around the caller's violation predicate.
class Budget {
 public:
  Budget(int max_runs, const ViolationPredicate& violates)
      : remaining_(max_runs), violates_(violates) {}

  bool Violates(const ScenarioSpec& spec) {
    if (remaining_ <= 0) {
      return false;  // Out of budget: treat as "does not reproduce".
    }
    --remaining_;
    ++runs_;
    return violates_(spec);
  }

  bool exhausted() const { return remaining_ <= 0; }
  int runs() const { return runs_; }

 private:
  int remaining_;
  int runs_ = 0;
  const ViolationPredicate& violates_;
};

ScenarioSpec WithFaults(const ScenarioSpec& base, const std::vector<FaultSpec>& faults) {
  ScenarioSpec spec = base;
  spec.faults = faults;
  return spec;
}

// Classic ddmin over the fault sequence: try dropping chunks (and keeping
// only chunks) at doubling granularity until no single fault can be removed.
std::vector<FaultSpec> DdminFaults(const ScenarioSpec& base, Budget& budget) {
  std::vector<FaultSpec> current = base.faults;
  size_t granularity = 2;
  while (current.size() >= 2 && !budget.exhausted()) {
    const size_t chunk = std::max<size_t>(1, current.size() / granularity);
    bool progressed = false;
    for (size_t start = 0; start < current.size(); start += chunk) {
      std::vector<FaultSpec> without;
      without.insert(without.end(), current.begin(),
                     current.begin() + static_cast<ptrdiff_t>(start));
      without.insert(without.end(),
                     current.begin() + static_cast<ptrdiff_t>(
                                           std::min(start + chunk, current.size())),
                     current.end());
      if (without.empty()) {
        continue;  // The empty fault plan is tested separately by the caller.
      }
      if (budget.Violates(WithFaults(base, without))) {
        current = without;
        granularity = std::max<size_t>(2, granularity - 1);
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      if (chunk == 1) {
        break;  // Minimal: no single fault can be dropped.
      }
      granularity = std::min(granularity * 2, current.size());
    }
  }
  return current;
}

}  // namespace

MinimizationResult MinimizeScenarioWith(const ScenarioSpec& original, int max_runs,
                                        const ViolationPredicate& violates) {
  Budget budget(max_runs, violates);
  MinimizationResult result;
  result.minimized = original;

  // 1. Does the violation even need faults? (An oracle bug or a workload
  // issue would reproduce with none.)
  if (!original.faults.empty() &&
      budget.Violates(WithFaults(original, {}))) {
    result.minimized.faults.clear();
  } else if (original.faults.size() >= 2) {
    result.minimized.faults = DdminFaults(original, budget);
  }

  // 2. Workload reduction: no workload at all, else scale 1.
  if (result.minimized.workload != WorkloadKind::kNone) {
    ScenarioSpec candidate = result.minimized;
    candidate.workload = WorkloadKind::kNone;
    if (budget.Violates(candidate)) {
      result.minimized = candidate;
    } else if (result.minimized.workload_scale > 1) {
      candidate = result.minimized;
      candidate.workload_scale = 1;
      if (budget.Violates(candidate)) {
        result.minimized = candidate;
      }
    }
  }

  result.runs = budget.runs();
  result.reduced = result.minimized.faults.size() < original.faults.size() ||
                   result.minimized.workload != original.workload ||
                   result.minimized.workload_scale != original.workload_scale;
  return result;
}

MinimizationResult MinimizeScenario(const ScenarioSpec& original, int max_runs,
                                    const std::string& target_oracle) {
  ViolationPredicate violates = [&target_oracle](const ScenarioSpec& spec) {
    const ScenarioResult run = RunScenario(spec);
    if (target_oracle.empty()) {
      return run.violated();
    }
    for (const OracleViolation& violation : run.violations) {
      if (violation.oracle == target_oracle) {
        return true;
      }
    }
    return false;
  };
  return MinimizeScenarioWith(original, max_runs, violates);
}

}  // namespace campaign
