#include "src/campaign/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/base/rng.h"

namespace campaign {
namespace {

// Name table for RogueAxesToString; order matches the RogueAxis bit order so
// the rendering is stable for repro lines and fingerprint-adjacent logs.
struct RogueAxisEntry {
  RogueAxis axis;
  const char* name;
};
constexpr RogueAxisEntry kRogueAxisNames[] = {
    {kRogueClockFreeze, "clock-freeze"},
    {kRogueClockDrift, "clock-drift"},
    {kRogueHeapScribble, "heap-scribble"},
    {kRogueHeapBadPtr, "heap-bad-ptr"},
    {kRogueHeapCycle, "heap-cycle"},
    {kRogueHeapTorn, "heap-torn"},
    {kRogueRpcBabble, "rpc-babble"},
    {kRogueRpcGarbage, "rpc-garbage"},
    {kRogueRpcSilence, "rpc-silence"},
    {kRogueVoteContrarian, "vote-contrarian"},
    {kRogueVoteAccuse, "vote-accuse"},
};

const char* CorruptionModeName(flash::PointerCorruptionMode mode) {
  switch (mode) {
    case flash::PointerCorruptionMode::kRandomSameCell:
      return "random-same-cell";
    case flash::PointerCorruptionMode::kRandomOtherCell:
      return "random-other-cell";
    case flash::PointerCorruptionMode::kOffByOneWord:
      return "off-by-one-word";
    case flash::PointerCorruptionMode::kSelfPointing:
      return "self-pointing";
  }
  return "unknown";
}

flash::PointerCorruptionMode PickCorruptionMode(base::Rng& rng) {
  switch (rng.Below(4)) {
    case 0:
      return flash::PointerCorruptionMode::kRandomSameCell;
    case 1:
      return flash::PointerCorruptionMode::kRandomOtherCell;
    case 2:
      return flash::PointerCorruptionMode::kOffByOneWord;
    default:
      return flash::PointerCorruptionMode::kSelfPointing;
  }
}

// A message-fault plan with rates low enough that the reliable transport must
// ride it out: per-hop loss (drop + corrupt) stays well under the level where
// kMaxRpcAttempts consecutive losses become likely, so no cell may die.
FaultSpec MakeMessageFaultPlan(base::Rng& rng, int num_cells) {
  FaultSpec fault;
  fault.kind = FaultKind::kMessageFaults;
  fault.drop_pm = 10 + static_cast<uint32_t>(rng.Below(41));     // 1.0% - 5.0%
  fault.dup_pm = 10 + static_cast<uint32_t>(rng.Below(41));      // 1.0% - 5.0%
  fault.delay_pm = 20 + static_cast<uint32_t>(rng.Below(81));    // 2.0% - 10.0%
  fault.corrupt_pm = 5 + static_cast<uint32_t>(rng.Below(21));   // 0.5% - 2.5%
  fault.duration = (50 + static_cast<Time>(rng.Below(201))) * hive::kMillisecond;
  if (rng.OneIn(3)) {
    // Directed plan: one faulty route between two distinct cells.
    fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(num_cells)));
    fault.target = static_cast<CellId>(
        (fault.victim + 1 + rng.Below(static_cast<uint64_t>(num_cells - 1))) % num_cells);
  } else {
    fault.victim = -1;  // All routes.
    fault.target = -1;
  }
  return fault;
}

// One rogue axis from the given category (0 clock, 1 heap, 2 rpc, 3 vote).
// As a primary axis, category 3 always includes vote-accuse: a purely
// contrarian rogue only acts when something else triggers an agreement round,
// so on its own it would be undetectable; the repeated-accusation strike rule
// gives the vote category a self-contained detection path. Babble and
// silence live in the same category so they can never be combined (a mute
// cell cannot flood anyone).
uint32_t PickRogueAxis(base::Rng& rng, int category, bool primary) {
  switch (category) {
    case 0:
      return rng.OneIn(2) ? kRogueClockFreeze : kRogueClockDrift;
    case 1:
      switch (rng.Below(4)) {
        case 0:
          return kRogueHeapScribble;
        case 1:
          return kRogueHeapBadPtr;
        case 2:
          return kRogueHeapCycle;
        default:
          return kRogueHeapTorn;
      }
    case 2:
      switch (rng.Below(3)) {
        case 0:
          return kRogueRpcBabble;
        case 1:
          return kRogueRpcGarbage;
        default:
          return kRogueRpcSilence;
      }
    default:
      if (primary) {
        return kRogueVoteAccuse | (rng.OneIn(2) ? kRogueVoteContrarian : 0u);
      }
      return rng.OneIn(2) ? kRogueVoteContrarian : kRogueVoteAccuse;
  }
}

// A rogue-cell plan: one victim turned Byzantine along a primary axis plus,
// half the time, a secondary axis from a different category. The victim,
// accusation target and injection time are drawn before the axes so the RNG
// stream stays position-stable across axis choices.
FaultSpec MakeRoguePlan(base::Rng& rng, int num_cells, uint32_t forced_axes) {
  FaultSpec fault;
  fault.kind = FaultKind::kRogueCell;
  fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(num_cells)));
  fault.target = static_cast<CellId>(
      (fault.victim + 1 + rng.Below(static_cast<uint64_t>(num_cells - 1))) % num_cells);
  fault.inject_at = (30 + static_cast<Time>(rng.Below(120))) * hive::kMillisecond;
  if (forced_axes != 0) {
    fault.rogue_axes = forced_axes;
    return fault;
  }
  const int primary = static_cast<int>(rng.Below(4));
  fault.rogue_axes = PickRogueAxis(rng, primary, /*primary=*/true);
  if (rng.OneIn(2)) {
    const int secondary = (primary + 1 + static_cast<int>(rng.Below(3))) % 4;
    fault.rogue_axes |= PickRogueAxis(rng, secondary, /*primary=*/false);
  }
  return fault;
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kNone:
      return "none";
    case WorkloadKind::kPmake:
      return "pmake";
    case WorkloadKind::kRaytrace:
      return "raytrace";
    case WorkloadKind::kOcean:
      return "ocean";
    case WorkloadKind::kMixed:
      return "mixed";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind kind) {
  // Exhaustive: adding a FaultKind without a name is a compile error
  // (-Werror=switch), and the trailing abort keeps the function total
  // without a silent "unknown" bucket.
  switch (kind) {
    case FaultKind::kNodeFailure:
      return "node-failure";
    case FaultKind::kAddrMapCorruption:
      return "addr-map-corruption";
    case FaultKind::kWildWrite:
      return "wild-write";
    case FaultKind::kFalseAccusation:
      return "false-accusation";
    case FaultKind::kMessageFaults:
      return "message-faults";
    case FaultKind::kRogueCell:
      return "rogue-cell";
    case FaultKind::kRebootStorm:
      return "reboot-storm";
  }
  std::abort();
}

bool FaultKindFromName(std::string_view name, FaultKind* out) {
  for (FaultKind kind : kAllFaultKinds) {
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string RogueAxesToString(uint32_t axes) {
  std::string out;
  for (const RogueAxisEntry& entry : kRogueAxisNames) {
    if ((axes & entry.axis) == 0) {
      continue;
    }
    if (!out.empty()) {
      out += "+";
    }
    out += entry.name;
    axes &= ~static_cast<uint32_t>(entry.axis);
  }
  if (axes != 0) {
    out += out.empty() ? "?" : "+?";
  }
  return out.empty() ? "none" : out;
}

std::string FaultSpec::ToString() const {
  std::ostringstream out;
  if (kind == FaultKind::kMessageFaults) {
    out << FaultKindName(kind);
    if (victim >= 0) {
      out << " route=" << victim << "->" << target;
    } else {
      out << " route=all";
    }
    out << " drop=" << drop_pm << "pm dup=" << dup_pm << "pm delay=" << delay_pm
        << "pm corrupt=" << corrupt_pm << "pm t=" << inject_at / hive::kMillisecond
        << "ms+" << duration / hive::kMillisecond << "ms";
    return out.str();
  }
  out << FaultKindName(kind) << " victim=" << victim;
  if (kind == FaultKind::kRebootStorm) {
    out << " cycles=" << storm_cycles << " t=" << inject_at / hive::kMillisecond << "ms+"
        << duration / hive::kMillisecond << "ms";
    return out.str();
  }
  if (kind == FaultKind::kRogueCell) {
    out << " axes=" << RogueAxesToString(rogue_axes);
    if ((rogue_axes & kRogueVoteAccuse) != 0) {
      out << " target=" << target;
    }
    out << " t=" << inject_at / hive::kMillisecond << "ms";
    return out.str();
  }
  if (kind == FaultKind::kWildWrite || kind == FaultKind::kFalseAccusation) {
    out << " target=" << target;
  }
  if (kind == FaultKind::kAddrMapCorruption) {
    out << " mode=" << CorruptionModeName(mode);
  }
  out << " t=" << inject_at / hive::kMillisecond << "ms";
  return out.str();
}

int ScenarioSpec::NodeFailureCount() const {
  int count = 0;
  for (const FaultSpec& fault : faults) {
    count += fault.kind == FaultKind::kNodeFailure ? 1 : 0;
  }
  return count;
}

bool ScenarioSpec::IsNodeFailureVictim(CellId cell) const {
  for (const FaultSpec& fault : faults) {
    if (fault.kind == FaultKind::kNodeFailure && fault.victim == cell) {
      return true;
    }
  }
  return false;
}

std::string ScenarioSpec::ToString() const {
  std::ostringstream out;
  out << "scenario " << index << " seed=0x" << std::hex << seed << std::dec
      << " cells=" << num_cells << " workload=" << WorkloadKindName(workload) << "x"
      << workload_scale << " agreement="
      << (agreement_mode == hive::AgreementMode::kOracle ? "oracle" : "voting");
  if (auto_reintegrate) {
    out << " reintegrate";
  }
  if (disable_firewall) {
    out << " FIREWALL-OFF";
  }
  if (disable_hop_bound) {
    out << " HOP-BOUND-OFF";
  }
  if (bug_no_dedup) {
    out << " BUG-NO-DEDUP";
  }
  if (salvage) {
    out << " salvage";
  }
  if (bug_salvage_unchecked) {
    out << " BUG-SALVAGE-UNCHECKED";
  }
  if (healthy_baseline) {
    out << " baseline";
  }
  out << " faults=[";
  for (size_t i = 0; i < faults.size(); ++i) {
    out << (i > 0 ? "; " : "") << faults[i].ToString();
  }
  out << "]";
  return out.str();
}

std::string ScenarioSpec::ReproLine() const {
  std::ostringstream out;
  out << "hive_campaign --seed=" << master_seed << " --scenario=" << index;
  if (disable_firewall && !bug_salvage_unchecked) {
    out << " --fixture=wild_write";
  }
  if (disable_rpc_dedup && !bug_no_dedup) {
    out << " --fixture=no_dedup";
  } else if (disable_hop_bound) {
    out << " --fixture=no_hop_bound";
  } else if (message_faults_only) {
    out << " --faults=message";
  } else if (rogue_only) {
    out << " --faults=rogue";
  } else if (reboot_storm_only) {
    out << " --faults=reboot-storm";
  } else if (healthy_baseline) {
    out << " --faults=none";
  }
  if (bug_no_dedup) {
    out << " --bug=no_dedup";
  }
  if (bug_salvage_unchecked) {
    out << " --bug=salvage_unchecked";
  } else if (salvage && !reboot_storm_only) {
    out << " --salvage";
  }
  if (!mutation_chain.empty()) {
    out << " --mutate=" << FormatMutationChain(mutation_chain);
  }
  return out.str();
}

uint64_t DeriveScenarioSeed(uint64_t master_seed, uint64_t index) {
  // Two SplitMix64 rounds over master and index. One round is enough to
  // decorrelate neighbouring indices; the second decorrelates neighbouring
  // master seeds as well.
  uint64_t z = master_seed ^ (index * 0x9E3779B97F4A7C15ull + 0x9E3779B97F4A7C15ull);
  for (int round = 0; round < 2; ++round) {
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
  }
  return z != 0 ? z : 1;  // Rng(0) is fine, but a zero seed reads badly in repro lines.
}

ScenarioSpec GenerateScenario(uint64_t master_seed, uint64_t index,
                              const GeneratorOptions& options) {
  ScenarioSpec spec;
  spec.master_seed = master_seed;
  spec.index = index;
  spec.seed = DeriveScenarioSeed(master_seed, index);
  base::Rng rng(spec.seed);

  spec.num_cells = rng.OneIn(4) ? 2 : 4;
  spec.agreement_mode =
      rng.OneIn(3) ? hive::AgreementMode::kVoting : hive::AgreementMode::kOracle;
  spec.auto_reintegrate = rng.OneIn(5);

  const uint64_t workload_roll = rng.Below(100);
  if (workload_roll < 40) {
    spec.workload = WorkloadKind::kPmake;
  } else if (workload_roll < 65) {
    spec.workload = WorkloadKind::kRaytrace;
  } else if (workload_roll < 85) {
    spec.workload = WorkloadKind::kOcean;
  } else {
    spec.workload = WorkloadKind::kMixed;
  }
  spec.workload_scale = 1 + static_cast<int>(rng.Below(2));

  if (options.bug_no_dedup) {
    // Seeded-bug discovery mode: one cell's duplicate suppression is silently
    // broken, but the fault plan still comes from the default distribution
    // (with duplication thinned below, after the plan is drawn). Only a
    // scenario that lands duplicates on non-idempotent traffic served by the
    // buggy cell trips the at-most-once oracle. Reintegration is forced off:
    // a reboot would recreate the buggy cell's RPC layer and wipe the
    // violation counters the oracle reads.
    spec.bug_no_dedup = true;
    spec.disable_rpc_dedup = true;
    spec.auto_reintegrate = false;
  }

  if (options.salvage) {
    // Salvage sweep: the default fault distribution, but recoveries salvage
    // provably-clean pages instead of discarding them. No extra RNG draws, so
    // the plan is identical to the plain sweep's scenario at the same index.
    spec.salvage = true;
  }

  if (options.reboot_storm_only) {
    // Reboot-storm family: four cells, ground-truth agreement (the family
    // stresses salvage and live rejoin, not Byzantine voting), automatic
    // reintegration with live rejoin and salvage on, and exactly one storm.
    spec.reboot_storm_only = true;
    spec.salvage = true;
    spec.num_cells = 4;
    spec.agreement_mode = hive::AgreementMode::kOracle;
    spec.auto_reintegrate = true;
    FaultSpec fault;
    fault.kind = FaultKind::kRebootStorm;
    fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
    fault.inject_at = (30 + static_cast<Time>(rng.Below(90))) * hive::kMillisecond;
    fault.storm_cycles = 3 + static_cast<uint32_t>(rng.Below(3));
    fault.duration = 500 * hive::kMillisecond;
    spec.faults.push_back(fault);
    return spec;
  }

  if (options.bug_salvage_unchecked) {
    // Sensitivity fixture: salvage runs blind (no checksum re-verification).
    // The plan write-exports the target's canary page to the victim, lands a
    // wild write on it (firewall checking off so the scribble sticks), then
    // kills the victim. Blind salvage adopts the corrupt canary bytes and the
    // no-corrupt-adoption oracle must flag the scenario; with verification on
    // the same plan discards the page and stays silent.
    spec.bug_salvage_unchecked = true;
    spec.salvage = true;
    spec.disable_firewall = true;
    spec.auto_reintegrate = false;  // The corpse stays excised; the salvage log stands.
    FaultSpec wild;
    wild.kind = FaultKind::kWildWrite;
    wild.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
    wild.target = static_cast<CellId>(
        (wild.victim + 1 + rng.Below(static_cast<uint64_t>(spec.num_cells - 1))) %
        spec.num_cells);
    wild.inject_at = (40 + static_cast<Time>(rng.Below(60))) * hive::kMillisecond;
    spec.faults.push_back(wild);
    FaultSpec kill;
    kill.kind = FaultKind::kNodeFailure;
    kill.victim = wild.victim;
    kill.inject_at = wild.inject_at + (30 + static_cast<Time>(rng.Below(40))) * hive::kMillisecond;
    spec.faults.push_back(kill);
    return spec;
  }

  if (options.wild_write_fixture) {
    // Fixture: exactly one wild write that actually lands (firewall checking
    // off). Everything else stays deterministic from the seed.
    spec.disable_firewall = true;
    FaultSpec fault;
    fault.kind = FaultKind::kWildWrite;
    fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
    fault.target = static_cast<CellId>(
        (fault.victim + 1 + rng.Below(static_cast<uint64_t>(spec.num_cells - 1))) %
        spec.num_cells);
    fault.inject_at = (40 + static_cast<Time>(rng.Below(60))) * hive::kMillisecond;
    spec.faults.push_back(fault);
    return spec;
  }

  if (options.no_dedup_fixture) {
    // Fixture: duplicate suppression off, plus one long, duplication-heavy
    // plan over all routes. The intercell traffic the runner drives through
    // the at-most-once handlers then re-executes, and the at-most-once
    // oracle must flag the scenario. Reintegration is forced off: a reboot
    // recreates the victim's RPC layer and would wipe the violation counters
    // the oracle reads.
    spec.disable_rpc_dedup = true;
    spec.message_faults_only = true;
    spec.auto_reintegrate = false;
    FaultSpec fault = MakeMessageFaultPlan(rng, spec.num_cells);
    fault.victim = -1;
    fault.target = -1;
    fault.drop_pm = 0;  // Pure duplication: losses would only mask the bug.
    fault.corrupt_pm = 0;
    fault.dup_pm = 350 + static_cast<uint32_t>(rng.Below(151));  // 35% - 50%
    fault.inject_at = (20 + static_cast<Time>(rng.Below(30))) * hive::kMillisecond;
    fault.duration = 300 * hive::kMillisecond;
    spec.faults.push_back(fault);
    return spec;
  }

  if (options.message_faults_only) {
    // CI sweep mode: one or two message-fault windows, nothing else. The
    // transport must keep every cell alive and every mutation at-most-once.
    spec.message_faults_only = true;
    const int num_plans = 1 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < num_plans; ++i) {
      FaultSpec fault = MakeMessageFaultPlan(rng, spec.num_cells);
      fault.inject_at = (5 + static_cast<Time>(rng.Below(395))) * hive::kMillisecond;
      spec.faults.push_back(fault);
    }
    std::sort(spec.faults.begin(), spec.faults.end(), [](const FaultSpec& a,
                                                         const FaultSpec& b) {
      return a.inject_at < b.inject_at;
    });
    return spec;
  }

  if (options.rogue_only || options.healthy_baseline || options.no_hop_bound_fixture) {
    // Rogue-family geometry: four cells so three honest voters always outvote
    // the rogue, real voting (an oracle consulting ground truth would
    // trivialise Byzantine detection), and no reintegration (the excision
    // verdict must stand for the oracles to inspect).
    spec.num_cells = 4;
    spec.agreement_mode = hive::AgreementMode::kVoting;
    spec.auto_reintegrate = false;
    if (options.healthy_baseline) {
      // Sensitivity baseline: identical geometry and workload, zero faults.
      // The hardened detectors must raise no excision at all.
      spec.healthy_baseline = true;
      return spec;
    }
    spec.rogue_only = true;
    uint32_t forced_axes = 0;
    if (options.no_hop_bound_fixture) {
      // Fixture: a cyclic chain with the survivors' hop bound removed is
      // exactly the hang the bound exists to prevent; the no-survivor-hang
      // oracle must flag it.
      spec.disable_hop_bound = true;
      forced_axes = kRogueHeapCycle;
    }
    spec.faults.push_back(MakeRoguePlan(rng, spec.num_cells, forced_axes));
    return spec;
  }

  // Fault plan: one to three faults. At most half the cells take fail-stop
  // node failures so the survivor oracles always have cells to check, and at
  // most one false accusation per scenario (a second identical accusation
  // would, by design, get the accuser declared corrupt -- covered by the
  // recovery edge-case tests, not the campaign's healthy-path oracles).
  // Message faults and false accusations are never mixed: an
  // exhaustion-induced hint against the already-accused suspect would be
  // vetoed and accumulate a second voting strike against a healthy accuser,
  // which is the strike machinery working as designed, not a containment bug.
  const int max_node_failures = spec.num_cells / 2;
  const int num_faults = 1 + static_cast<int>(rng.Below(3));
  std::vector<CellId> node_fail_victims;
  bool have_accusation = false;
  bool have_message = false;
  for (int i = 0; i < num_faults; ++i) {
    FaultSpec fault;
    fault.inject_at = (5 + static_cast<Time>(rng.Below(595))) * hive::kMillisecond;
    const uint64_t roll = rng.Below(100);
    if (roll < 45 && static_cast<int>(node_fail_victims.size()) < max_node_failures) {
      fault.kind = FaultKind::kNodeFailure;
      // Distinct victims: failing a dead node is a no-op, not a new scenario.
      CellId victim;
      do {
        victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
      } while (std::find(node_fail_victims.begin(), node_fail_victims.end(), victim) !=
               node_fail_victims.end());
      fault.victim = victim;
      node_fail_victims.push_back(victim);
    } else if (roll < 65) {
      fault.kind = FaultKind::kAddrMapCorruption;
      fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
      fault.mode = PickCorruptionMode(rng);
    } else if (roll < 80 || have_message || have_accusation) {
      fault.kind = FaultKind::kWildWrite;
      fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
      fault.target = static_cast<CellId>(
          (fault.victim + 1 + rng.Below(static_cast<uint64_t>(spec.num_cells - 1))) %
          spec.num_cells);
    } else if (roll < 90) {
      const Time inject_at = fault.inject_at;
      fault = MakeMessageFaultPlan(rng, spec.num_cells);
      fault.inject_at = inject_at;
      have_message = true;
    } else {
      fault.kind = FaultKind::kFalseAccusation;
      fault.victim = static_cast<CellId>(rng.Below(static_cast<uint64_t>(spec.num_cells)));
      fault.target = static_cast<CellId>(
          (fault.victim + 1 + rng.Below(static_cast<uint64_t>(spec.num_cells - 1))) %
          spec.num_cells);
      have_accusation = true;
    }
    spec.faults.push_back(fault);
  }
  std::sort(spec.faults.begin(), spec.faults.end(),
            [](const FaultSpec& a, const FaultSpec& b) { return a.inject_at < b.inject_at; });
  if (spec.bug_no_dedup) {
    // Thin every duplicate-delivery channel to trace levels. Duplication is
    // the obvious one, but loss is just as dangerous: a lost *reply* makes
    // the client retransmit a request the server already executed, which is
    // a duplicate delivery too (and corruption degrades into loss). With
    // 10..50 per mille thinned to 0..2, a random draw rarely re-delivers a
    // non-idempotent request to the buggy cell, so exposing the seeded bug
    // takes the sustained duplicate pressure only the mutation stage builds
    // up (RedrawMessageRates pushes duplication to 45%, far past the
    // generator's envelope).
    for (FaultSpec& fault : spec.faults) {
      if (fault.kind == FaultKind::kMessageFaults) {
        fault.drop_pm = fault.drop_pm / 25;
        fault.corrupt_pm = fault.corrupt_pm / 25;
        fault.dup_pm = fault.dup_pm / 25;
      }
    }
  }
  return spec;
}

namespace {

// Structure-preserving mutation operators (see MutateScenario in the header).
enum class MutationOp {
  kJitterTime,      // Redraw one fault's injection time.
  kRetarget,        // Redraw one fault's victim (and target / route).
  kDuplicateFault,  // Copy a fault to a fresh injection time (plan grows).
  kDropFault,       // Remove one fault (plan shrinks).
  kWorkloadKind,    // Swap the workload for a different kind.
  kWorkloadScale,   // Toggle workload scale 1 <-> 2.
  kMessageRates,    // Redraw a message window's rates and duration.
  kCorruptionMode,  // Redraw an addr-map corruption mode.
  kGeometry,        // Flip 2 <-> 4 cells, re-fitting the fault plan.
};

bool HasFaultKind(const ScenarioSpec& spec, FaultKind kind) {
  for (const FaultSpec& fault : spec.faults) {
    if (fault.kind == kind) {
      return true;
    }
  }
  return false;
}

std::vector<size_t> FaultsOfKind(const ScenarioSpec& spec, FaultKind kind) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    if (spec.faults[i].kind == kind) {
      indices.push_back(i);
    }
  }
  return indices;
}

// Node failures, accusations and rogues are never duplicated: re-killing a
// dead cell is a no-op, a second accusation is the two-strike path the
// generator excludes by design, and rogue sweeps expect exactly one rogue.
bool CanDuplicate(FaultKind kind) {
  return kind != FaultKind::kNodeFailure && kind != FaultKind::kFalseAccusation &&
         kind != FaultKind::kRogueCell && kind != FaultKind::kRebootStorm;
}

Time DrawInjectTime(base::Rng& rng) {
  return (5 + static_cast<Time>(rng.Below(595))) * hive::kMillisecond;
}

void RetargetFault(base::Rng& rng, ScenarioSpec& spec, size_t index) {
  FaultSpec& fault = spec.faults[index];
  const auto n = static_cast<uint64_t>(spec.num_cells);
  switch (fault.kind) {
    case FaultKind::kNodeFailure: {
      // Redraw among cells not already taken by another node failure, so
      // victims stay distinct.
      std::vector<CellId> free_cells;
      for (CellId c = 0; c < spec.num_cells; ++c) {
        bool taken = false;
        for (size_t j = 0; j < spec.faults.size(); ++j) {
          taken = taken || (j != index && spec.faults[j].kind == FaultKind::kNodeFailure &&
                            spec.faults[j].victim == c);
        }
        if (!taken) {
          free_cells.push_back(c);
        }
      }
      fault.victim = free_cells[rng.Below(free_cells.size())];
      break;
    }
    case FaultKind::kAddrMapCorruption:
    case FaultKind::kRebootStorm:
      fault.victim = static_cast<CellId>(rng.Below(n));
      break;
    case FaultKind::kMessageFaults:
      if (rng.OneIn(3)) {
        fault.victim = static_cast<CellId>(rng.Below(n));
        fault.target =
            static_cast<CellId>((fault.victim + 1 + rng.Below(n - 1)) % spec.num_cells);
      } else {
        fault.victim = -1;
        fault.target = -1;
      }
      break;
    case FaultKind::kWildWrite:
    case FaultKind::kFalseAccusation:
    case FaultKind::kRogueCell:
      fault.victim = static_cast<CellId>(rng.Below(n));
      fault.target =
          static_cast<CellId>((fault.victim + 1 + rng.Below(n - 1)) % spec.num_cells);
      break;
  }
}

// Redraws a message window's rates. The loss envelope matches the generator
// (drop + corrupt capped at 7.5% per hop, so the transport must survive), but
// duplication may climb to 45% -- an order beyond the generator's 5%.
// Duplicate pressure is the strongest gradient for transport bugs, which is
// why this operator carries double weight in the operator list.
void RedrawMessageRates(base::Rng& rng, FaultSpec& fault) {
  fault.drop_pm = static_cast<uint32_t>(rng.Below(51));
  fault.corrupt_pm = static_cast<uint32_t>(rng.Below(26));
  fault.delay_pm = 20 + static_cast<uint32_t>(rng.Below(81));
  fault.dup_pm = 10 + static_cast<uint32_t>(rng.Below(441));
  fault.duration = (50 + static_cast<Time>(rng.Below(301))) * hive::kMillisecond;
}

// Flips the cell count 2 <-> 4 and re-fits the fault plan: victims and
// targets are folded into range, targets are kept distinct from victims, and
// node failures keep distinct victims capped at half the cells (extras are
// dropped, exactly the invariant the generator maintains).
void FlipGeometry(ScenarioSpec& spec) {
  spec.num_cells = spec.num_cells == 2 ? 4 : 2;
  const auto n = static_cast<CellId>(spec.num_cells);
  std::vector<FaultSpec> kept;
  std::vector<CellId> node_victims;
  for (FaultSpec fault : spec.faults) {
    if (fault.victim >= n) {
      fault.victim = fault.victim % n;
    }
    if (fault.target >= n) {
      fault.target = fault.target % n;
    }
    const bool distinct_target = fault.kind == FaultKind::kWildWrite ||
                                 fault.kind == FaultKind::kFalseAccusation ||
                                 fault.kind == FaultKind::kRogueCell;
    if (distinct_target && fault.target == fault.victim) {
      fault.target = static_cast<CellId>((fault.victim + 1) % n);
    }
    if (fault.kind == FaultKind::kNodeFailure) {
      const bool duplicate = std::find(node_victims.begin(), node_victims.end(),
                                       fault.victim) != node_victims.end();
      if (duplicate || static_cast<int>(node_victims.size()) >= spec.num_cells / 2) {
        continue;
      }
      node_victims.push_back(fault.victim);
    }
    kept.push_back(fault);
  }
  spec.faults = kept;
}

}  // namespace

ScenarioSpec MutateScenario(const ScenarioSpec& base, uint64_t mutation_seed) {
  ScenarioSpec spec = base;
  spec.mutation_chain.push_back(mutation_seed);
  spec.seed = DeriveScenarioSeed(base.seed, mutation_seed);
  base::Rng rng(spec.seed ^ 0x6D757461746Full);

  // Applicable operators for this spec. kMessageRates appears twice when a
  // message window exists (see RedrawMessageRates).
  const bool fixed_geometry = spec.rogue_only || spec.healthy_baseline ||
                              spec.disable_hop_bound || spec.reboot_storm_only ||
                              spec.bug_salvage_unchecked;
  bool can_duplicate = false;
  if (spec.faults.size() < 4) {
    for (const FaultSpec& fault : spec.faults) {
      can_duplicate = can_duplicate || CanDuplicate(fault.kind);
    }
  }
  std::vector<MutationOp> ops;
  if (!spec.faults.empty()) {
    ops.push_back(MutationOp::kJitterTime);
    ops.push_back(MutationOp::kRetarget);
  }
  if (spec.faults.size() >= 2) {
    ops.push_back(MutationOp::kDropFault);
  }
  if (can_duplicate) {
    ops.push_back(MutationOp::kDuplicateFault);
  }
  ops.push_back(MutationOp::kWorkloadKind);
  ops.push_back(MutationOp::kWorkloadScale);
  if (HasFaultKind(spec, FaultKind::kMessageFaults)) {
    ops.push_back(MutationOp::kMessageRates);
    ops.push_back(MutationOp::kMessageRates);
  }
  if (HasFaultKind(spec, FaultKind::kAddrMapCorruption)) {
    ops.push_back(MutationOp::kCorruptionMode);
  }
  if (!fixed_geometry) {
    ops.push_back(MutationOp::kGeometry);
  }

  switch (ops[rng.Below(ops.size())]) {
    case MutationOp::kJitterTime:
      spec.faults[rng.Below(spec.faults.size())].inject_at = DrawInjectTime(rng);
      break;
    case MutationOp::kRetarget:
      RetargetFault(rng, spec, rng.Below(spec.faults.size()));
      break;
    case MutationOp::kDuplicateFault: {
      std::vector<size_t> eligible;
      for (size_t i = 0; i < spec.faults.size(); ++i) {
        if (CanDuplicate(spec.faults[i].kind)) {
          eligible.push_back(i);
        }
      }
      FaultSpec copy = spec.faults[eligible[rng.Below(eligible.size())]];
      copy.inject_at = DrawInjectTime(rng);
      spec.faults.push_back(copy);
      break;
    }
    case MutationOp::kDropFault:
      spec.faults.erase(spec.faults.begin() +
                        static_cast<ptrdiff_t>(rng.Below(spec.faults.size())));
      break;
    case MutationOp::kWorkloadKind: {
      const WorkloadKind kinds[] = {WorkloadKind::kPmake, WorkloadKind::kRaytrace,
                                    WorkloadKind::kOcean, WorkloadKind::kMixed};
      WorkloadKind pick;
      do {
        pick = kinds[rng.Below(4)];
      } while (pick == spec.workload);
      spec.workload = pick;
      break;
    }
    case MutationOp::kWorkloadScale:
      spec.workload_scale = spec.workload_scale == 1 ? 2 : 1;
      break;
    case MutationOp::kMessageRates: {
      const std::vector<size_t> windows = FaultsOfKind(spec, FaultKind::kMessageFaults);
      RedrawMessageRates(rng, spec.faults[windows[rng.Below(windows.size())]]);
      break;
    }
    case MutationOp::kCorruptionMode: {
      const std::vector<size_t> maps = FaultsOfKind(spec, FaultKind::kAddrMapCorruption);
      spec.faults[maps[rng.Below(maps.size())]].mode = PickCorruptionMode(rng);
      break;
    }
    case MutationOp::kGeometry:
      FlipGeometry(spec);
      break;
  }

  // Stable sort: equal injection times keep their pre-mutation order, so the
  // mutant is fully determined by (base, mutation_seed).
  std::stable_sort(spec.faults.begin(), spec.faults.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.inject_at < b.inject_at;
                   });
  return spec;
}

ScenarioSpec ApplyMutationChain(const ScenarioSpec& root,
                                const std::vector<uint64_t>& chain) {
  ScenarioSpec spec = root;
  for (uint64_t mutation_seed : chain) {
    spec = MutateScenario(spec, mutation_seed);
  }
  return spec;
}

std::string FormatMutationChain(const std::vector<uint64_t>& chain) {
  std::ostringstream out;
  for (size_t i = 0; i < chain.size(); ++i) {
    out << (i > 0 ? "," : "") << chain[i];
  }
  return out.str();
}

bool ParseMutationChain(std::string_view text, std::vector<uint64_t>* out) {
  out->clear();
  uint64_t value = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c == ',') {
      if (!have_digit) {
        return false;
      }
      out->push_back(value);
      value = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<uint64_t>(c - '0');
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit) {
    return false;
  }
  out->push_back(value);
  return true;
}

}  // namespace campaign
