// Containment oracle library for the fault-campaign engine.
//
// After a scenario runs, every oracle inspects the final simulator state and
// decides whether the paper's containment claim (section 2: a fault damages
// only the cell it occurred in, and only processes using that cell's
// resources) held. Oracles are pure reads of simulator state; they charge no
// simulated time, so running them never perturbs the scenario itself.

#ifndef HIVE_SRC_CAMPAIGN_ORACLES_H_
#define HIVE_SRC_CAMPAIGN_ORACLES_H_

#include <string>
#include <vector>

#include "src/campaign/scenario.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"

namespace campaign {

struct OracleViolation {
  std::string oracle;  // Which oracle fired.
  std::string detail;  // Human-readable description of what it saw.

  std::string ToString() const { return oracle + ": " + detail; }
};

// Pre-fault state the runner records so oracles can compare before/after:
// one canary file per cell, plus a cross-cell handle opened before any fault
// (its generation snapshot is the "before" picture).
struct CanaryState {
  struct PerCell {
    std::string path;
    uint64_t pattern_seed = 0;
    uint64_t size = 0;
    // Handle opened by the *next* cell before any fault was injected.
    hive::FileHandle cross_handle;
    hive::CellId cross_reader = hive::kInvalidCell;
    bool valid = false;
  };
  std::vector<PerCell> cells;
};

// Everything the oracles need to judge a finished scenario.
struct OracleInput {
  const ScenarioSpec* spec = nullptr;
  hive::HiveSystem* system = nullptr;
  const CanaryState* canaries = nullptr;
  // Faults that actually landed (an addr-map corruption may find no target
  // process; a fault against an already-dead cell is skipped).
  std::vector<bool> injected;
  // Number of corrupt workload output files, -1 when not validated (no
  // validator for the workload, or the file server did not survive).
  int corrupt_outputs = -1;
  // Frames where an injected wild write actually landed (firewall checking
  // off). The salvage-containment oracle asserts none of them was adopted.
  std::vector<hive::PhysAddr> wild_write_frames;
};

// Runs the full oracle library; returns every violation found (empty = the
// containment claim held). Oracle names are stable identifiers -- they appear
// in CI logs and repro reports:
//   fault-containment     only intended victims died; every death was confirmed
//   detection-complete    fail-stop victims were detected and recovered
//   recovery-barriers     barrier ordering and recovery completion flags
//   firewall-invariants   hardware vectors match kernel bookkeeping
//   no-stale-exports      no live page still exported to a failed cell
//   generation-consistency pre-fault handles never serve corrupt data as fresh
//   survivors-functional  live cells still create/share/read files
//   output-integrity      workload outputs validate clean
//   rpc-at-most-once      no non-idempotent RPC handler ever re-executed
//   rpc-no-lost-ack       every acknowledged mutation was executed on a server
//   rpc-liveness          message faults alone never cost a cell its life
//   quarantine-implies-hint a quarantining cell also raised a detector hint
//   rogue-detected        a Byzantine cell was excised within the detection bound
//   no-survivor-hang      bounded traversal hops and agreement round cost
//   no-false-excision     only the rogue may be confirmed failed; the healthy
//                         baseline sees zero excisions
//   trace-consistency     every survivor's trace shows balanced recovery events
//   no-corrupt-adoption   salvaged canary pages still hold the canary pattern
//   reintegration-converges every started reintegration finished, re-excised
//                         the cell, or failed loudly within the bound
//   salvage-containment   no frame a wild write landed in was ever salvaged
std::vector<OracleViolation> CheckAllOracles(const OracleInput& input);

// The individual oracles behind CheckAllOracles, exposed so oracles_test can
// drive each one against a hand-built violating state and its healthy twin.
// Each appends its violations (if any) to `out`.
void CheckContainmentAndDetection(const OracleInput& input,
                                  std::vector<OracleViolation>* out);
void CheckRecoveryBarriers(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckFirewallInvariants(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckNoStaleExports(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckCanaries(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckSurvivorsFunctional(const OracleInput& input,
                              std::vector<OracleViolation>* out);
void CheckOutputs(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckRpcAtMostOnce(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckRpcNoLostAck(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckRpcLiveness(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckQuarantineImpliesHint(const OracleInput& input,
                                std::vector<OracleViolation>* out);
void CheckRogueDetection(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckNoSurvivorHang(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckNoFalseExcision(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckTraceConsistency(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckNoCorruptAdoption(const OracleInput& input, std::vector<OracleViolation>* out);
void CheckReintegrationConverges(const OracleInput& input,
                                 std::vector<OracleViolation>* out);
void CheckSalvageContainment(const OracleInput& input,
                             std::vector<OracleViolation>* out);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_ORACLES_H_
