// Campaign driver: fans scenarios out over a worker thread pool.
//
// Each scenario is an isolated single-threaded simulation, so the pool gets
// near-linear speedup with zero shared mutable state: workers claim scenario
// indices from one atomic counter and only take a lock to publish a finished
// result. The report is independent of worker count and scheduling order --
// scenario outcomes depend only on (master_seed, index).

#ifndef HIVE_SRC_CAMPAIGN_CAMPAIGN_H_
#define HIVE_SRC_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/campaign/minimizer.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"

namespace campaign {

struct CampaignOptions {
  uint64_t master_seed = 1;
  uint64_t num_scenarios = 200;
  int workers = 4;
  // Generate wild-write fixture scenarios (firewall checking disabled):
  // every scenario is expected to violate; used to prove the oracles fire.
  bool wild_write_fixture = false;
  // Generate no-dedup fixture scenarios (RPC duplicate suppression off under
  // a duplication-heavy message-fault plan): every scenario is expected to
  // trip the at-most-once oracle.
  bool no_dedup_fixture = false;
  // Restrict generated fault plans to message faults (the CI message-fault
  // sweep: loss + duplication + reordering + corruption).
  bool message_faults_only = false;
  // Restrict generated fault plans to one rogue-cell fault each (the CI rogue
  // sweep: a live Byzantine cell the survivors must detect and excise).
  bool rogue_only = false;
  // Rogue-sweep geometry with zero faults: the sensitivity baseline; every
  // excision is a false positive the no-false-excision oracle must flag.
  bool healthy_baseline = false;
  // Rogue fixture with the survivors' chain-chase hop bound removed: every
  // scenario is expected to trip the no-survivor-hang oracle.
  bool no_hop_bound_fixture = false;
  // Minimize each violating scenario after the sweep.
  bool minimize = true;
  int max_minimize_runs = 64;
  // Optional progress hook; invoked under the campaign lock, possibly from a
  // worker thread.
  std::function<void(const ScenarioResult&)> on_result;
};

struct CampaignFailure {
  ScenarioResult result;
  MinimizationResult minimization;  // minimized == result.spec when skipped.
  bool minimized = false;

  std::string Report() const;
};

struct CampaignReport {
  uint64_t scenarios_run = 0;
  uint64_t faults_injected = 0;
  uint64_t excisions = 0;  // Cells confirmed failed by agreement, summed.
  // Violating scenarios, sorted by index (deterministic across worker
  // counts and interleavings).
  std::vector<CampaignFailure> failures;

  bool ok() const { return failures.empty(); }
};

CampaignReport RunCampaign(const CampaignOptions& options);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_CAMPAIGN_H_
