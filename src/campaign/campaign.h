// Campaign driver: fans scenarios out over a worker thread pool.
//
// Each scenario is an isolated single-threaded simulation, so the pool gets
// near-linear speedup with zero shared mutable state. Work is organized in
// deterministic batches: the batch's scenario specs are fixed *before* any
// worker runs, workers claim batch slots from an atomic counter, and results
// are merged in slot order afterward. Everything downstream of the merge --
// coverage map, corpus admission, triage buckets, failure order, the merged
// fingerprint -- is therefore independent of worker count and scheduling.
//
// In guided mode the next batch is built from the corpus the previous batches
// grew: most slots mutate a coverage-novel corpus entry, the rest draw fresh
// scenarios, and any result that adds coverage features is admitted back into
// the corpus (and persisted when --corpus=DIR is given).

#ifndef HIVE_SRC_CAMPAIGN_CAMPAIGN_H_
#define HIVE_SRC_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/campaign/minimizer.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"

namespace campaign {

struct CampaignOptions {
  uint64_t master_seed = 1;
  uint64_t num_scenarios = 200;
  int workers = 4;
  // Worker threads of the in-scenario parallel simulation core (RunOptions);
  // outcome-neutral by construction. Composes with `workers`: total
  // concurrency is workers * sim_threads.
  int sim_threads = 1;
  // Generate wild-write fixture scenarios (firewall checking disabled):
  // every scenario is expected to violate; used to prove the oracles fire.
  bool wild_write_fixture = false;
  // Generate no-dedup fixture scenarios (RPC duplicate suppression off under
  // a duplication-heavy message-fault plan): every scenario is expected to
  // trip the at-most-once oracle.
  bool no_dedup_fixture = false;
  // Restrict generated fault plans to message faults (the CI message-fault
  // sweep: loss + duplication + reordering + corruption).
  bool message_faults_only = false;
  // Restrict generated fault plans to one rogue-cell fault each (the CI rogue
  // sweep: a live Byzantine cell the survivors must detect and excise).
  bool rogue_only = false;
  // Rogue-sweep geometry with zero faults: the sensitivity baseline; every
  // excision is a false positive the no-false-excision oracle must flag.
  bool healthy_baseline = false;
  // Rogue fixture with the survivors' chain-chase hop bound removed: every
  // scenario is expected to trip the no-survivor-hang oracle.
  bool no_hop_bound_fixture = false;
  // Seeded-bug discovery mode: duplicate suppression silently broken on one
  // cell under default fault plans with thinned duplication. The target of
  // the guided-vs-random sensitivity check (see ScenarioSpec::bug_no_dedup).
  bool bug_no_dedup = false;
  // Default fault plans with page salvage enabled on every cell (the CI
  // salvage sweep; wild-write plans also pre-stage a writable canary import
  // so recovery has a salvage candidate to adopt).
  bool salvage = false;
  // Restrict generated fault plans to one reboot-storm fault each (rotating
  // kill/rejoin cycles with live rejoin and salvage enabled).
  bool reboot_storm_only = false;
  // Seeded-bug sensitivity mode: salvage with both adoption proofs disabled
  // (blind adoption); every scenario must trip the salvage oracles.
  bool bug_salvage_unchecked = false;

  // Coverage-guided mode: batch the run, mutate coverage-novel corpus entries
  // instead of always drawing fresh scenarios.
  bool guided = false;
  // Scenarios per guided batch. Corpus admissions from batch N feed the
  // mutation pool of batch N+1, so smaller batches react to coverage faster
  // but parallelize less.
  int batch_size = 16;
  // Per-mille of guided slots that draw a fresh scenario instead of mutating
  // a corpus entry (exploration vs exploitation).
  int guided_fresh_pm = 250;
  // When non-empty: load corpus entries from this directory before the run
  // (guided mode uses them as mutation bases) and persist every newly
  // admitted entry into it.
  std::string corpus_dir;
  // Replay mode: run exactly the loaded corpus entries, nothing else.
  // num_scenarios is ignored; no mutation, no admission, no persistence.
  bool corpus_replay_only = false;
  // Stop at the first batch boundary after a violation (discovery-cost
  // measurement: CampaignReport::first_violation_order is the metric).
  bool stop_on_violation = false;

  // Minimize violating scenarios after the sweep (one per triage bucket; the
  // bucket's other members keep their original spec).
  bool minimize = true;
  int max_minimize_runs = 64;
  // Optional progress hook; invoked from the deterministic merge step, in
  // execution order, on the driver thread.
  std::function<void(const ScenarioResult&)> on_result;
};

struct CampaignFailure {
  ScenarioResult result;
  MinimizationResult minimization;  // minimized == result.spec when skipped.
  bool minimized = false;
  uint64_t order = 0;  // 1-based execution order of this scenario.

  std::string Report() const;
};

// One triage bucket: failures that tripped the same first oracle and share a
// trace signature. The bucket's representative (its earliest failure) is
// minimized with the oracle pinned, so `repro` + `minimized` is one
// actionable, byte-stable line pair per distinct misbehaviour.
struct TriageBucket {
  std::string oracle;
  uint64_t trace_signature = 0;
  uint64_t count = 0;        // Failures in this bucket.
  uint64_t first_order = 0;  // Execution order of the representative.
  std::string repro;         // Representative's self-contained repro line.
  std::string minimized;     // Representative's minimized spec (ToString).
  int minimize_runs = 0;     // 0 when minimization was disabled.
};

struct CampaignReport {
  uint64_t scenarios_run = 0;
  uint64_t faults_injected = 0;
  uint64_t excisions = 0;  // Cells confirmed failed by agreement, summed.
  uint64_t pages_salvaged = 0;  // Pages adopted instead of discarded, summed.
  // Violating scenarios in execution order (deterministic across worker
  // counts and interleavings; in non-guided mode this is index order).
  std::vector<CampaignFailure> failures;
  // Triage buckets in first-appearance order.
  std::vector<TriageBucket> buckets;

  // Merged coverage map (size and FNV digest) after the full run.
  uint64_t coverage_features = 0;
  uint64_t coverage_hash = 0;
  // FNV mix of every scenario fingerprint in execution order.
  uint64_t merged_fingerprint = 0;
  // Corpus entries loaded from disk / total in the pool after the run.
  uint64_t corpus_loaded = 0;
  uint64_t corpus_size = 0;
  // Guided-mode draw mix.
  uint64_t fresh_run = 0;
  uint64_t mutants_run = 0;
  // 1-based execution order of the first violating scenario, 0 if none.
  uint64_t first_violation_order = 0;

  bool ok() const { return failures.empty(); }
};

CampaignReport RunCampaign(const CampaignOptions& options);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_CAMPAIGN_H_
