#include "src/campaign/runner.h"

#include <functional>
#include <memory>
#include <sstream>

#include "src/base/rng.h"
#include "src/campaign/coverage.h"
#include "src/core/address_space.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/kernel_heap.h"
#include "src/core/process.h"
#include "src/core/recovery.h"
#include "src/core/rpc.h"
#include "src/core/scheduler.h"
#include "src/flash/fault_injector.h"
#include "src/flash/machine.h"
#include "src/flash/sips.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"
#include "src/workloads/raytrace.h"
#include "src/workloads/workload.h"

namespace campaign {
namespace {

using hive::Cell;
using hive::CellId;
using hive::Ctx;
using hive::HiveOptions;
using hive::HiveSystem;
using hive::kMillisecond;
using hive::kSecond;
using hive::ProcId;

// Scenario machines are deliberately small: detection and containment do not
// depend on memory size, and a campaign runs hundreds of these.
flash::MachineConfig CampaignConfig(int num_cells) {
  flash::MachineConfig config;
  config.num_nodes = num_cells;
  config.cpus_per_node = 1;
  config.memory_per_node = 16ull * 1024 * 1024;
  return config;
}

// Tiny workload parameterizations: enough traffic to populate page sharing,
// address maps and the COW tree, small enough that a scenario simulates in
// tens of milliseconds of wall time.
workloads::PmakeParams CampaignPmake(const ScenarioSpec& spec) {
  workloads::PmakeParams params;
  params.jobs = 4 * spec.workload_scale;
  params.parallelism = 4;
  params.source_bytes = 8 * 1024;
  params.output_bytes = 16 * 1024;
  params.shared_text_pages = 20;
  params.private_file_pages = 40;
  params.anon_pages = 20;
  params.scratch_pages = 2;
  params.metadata_ops = 5;
  params.compute_per_job = 150 * kMillisecond;
  params.name_seed = spec.seed;
  return params;
}

workloads::RaytraceParams CampaignRaytrace(const ScenarioSpec& spec) {
  workloads::RaytraceParams params;
  params.scene_pages = 48;
  params.blocks_per_worker = 2 * spec.workload_scale;
  params.compute_per_block = 60 * kMillisecond;
  params.result_bytes = 16 * 1024;
  params.name_seed = spec.seed + 1;
  return params;
}

workloads::OceanParams CampaignOcean(const ScenarioSpec& spec) {
  workloads::OceanParams params;
  params.grid_pages = 96;
  params.timesteps = 4 * spec.workload_scale;
  params.compute_per_step = 40 * kMillisecond;
  params.touches_per_step = 8;
  params.halo_pages = 2;
  params.name_seed = spec.seed + 2;
  return params;
}

std::string CanaryPath(CellId cell) {
  return "/campaign/canary-" + std::to_string(cell);
}

// Creates one canary file per cell (homed on that cell) and opens a
// cross-cell handle to each from the next cell over, before any fault fires.
// The cross reads also export the canary pages, so preemptive discard and
// generation bumps have real sharing state to operate on.
CanaryState SetUpCanaries(const ScenarioSpec& spec, HiveSystem& sys) {
  CanaryState canaries;
  canaries.cells.resize(static_cast<size_t>(spec.num_cells));
  for (CellId c = 0; c < spec.num_cells; ++c) {
    CanaryState::PerCell& canary = canaries.cells[static_cast<size_t>(c)];
    canary.path = CanaryPath(c);
    canary.pattern_seed = spec.seed ^ (0xC0FFEEull + static_cast<uint64_t>(c));
    canary.size = 8192;
    Cell& owner = sys.cell(c);
    Ctx octx = owner.MakeCtx();
    auto created = owner.fs().Create(
        octx, canary.path,
        workloads::PatternData(canary.pattern_seed, canary.size));
    if (!created.ok()) {
      continue;
    }
    if (spec.num_cells > 1) {
      canary.cross_reader = (c + 1) % spec.num_cells;
      Cell& reader = sys.cell(canary.cross_reader);
      Ctx rctx = reader.MakeCtx();
      auto handle = reader.fs().Open(rctx, canary.path);
      if (!handle.ok()) {
        continue;
      }
      canary.cross_handle = *handle;
      std::vector<uint8_t> warm(canary.size);
      (void)reader.fs().Read(rctx, canary.cross_handle, 0, std::span<uint8_t>(warm));
    } else {
      canary.cross_reader = c;
      canary.cross_handle = *owner.fs().Open(octx, canary.path);
    }
    canary.valid = true;
  }
  return canaries;
}

// State shared between the runner and the scheduled injection callbacks.
struct InjectionState {
  HiveSystem* sys = nullptr;
  const ScenarioSpec* spec = nullptr;
  std::vector<bool> injected;
  // Frames where an injected wild write actually landed (firewall checking
  // off). The salvage-containment oracle asserts none of them was salvaged.
  std::vector<hive::PhysAddr> wild_write_frames;
};

void InjectNodeFailure(InjectionState& state, size_t fault_index) {
  const FaultSpec& fault = state.spec->faults[fault_index];
  state.sys->machine().FailNode(state.sys->cell(fault.victim).first_node());
  state.injected[fault_index] = true;
}

// Corrupts an address-map next pointer of some process on the victim cell.
// Retries every 10 ms until a process has built a map; gives up 400 ms after
// the nominal injection time (the fault is then recorded as not landed).
void TryAddrMapCorruption(const std::shared_ptr<InjectionState>& state,
                          size_t fault_index, Time give_up) {
  const FaultSpec& fault = state->spec->faults[fault_index];
  HiveSystem& sys = *state->sys;
  Cell& victim = sys.cell(fault.victim);
  // Reachable = kernel up AND hardware alive; a node-failure victim stays
  // alive() until agreement confirms, but its memory is already gone.
  if (!sys.CellReachable(fault.victim)) {
    return;  // Already dead (earlier fault); corrupting it adds nothing.
  }
  for (hive::Process* proc : victim.sched().AllProcesses()) {
    if (proc->finished()) {
      continue;
    }
    Ctx ctx = victim.MakeCtx();
    auto regions = proc->address_space().ListRegions(ctx);
    if (regions.size() < 2) {
      continue;
    }
    flash::FaultInjector injector(&sys.machine(), state->spec->seed ^ fault_index);
    Cell& other = sys.cell((fault.victim + 1) % sys.num_cells());
    injector.CorruptPointer(
        regions[0].entry_addr + hive::AddrMapEntryLayout::kNext, fault.mode,
        victim.mem_base(), victim.mem_size(), other.mem_base(), other.mem_size());
    state->injected[fault_index] = true;
    return;
  }
  if (sys.machine().Now() < give_up) {
    sys.machine().events().ScheduleAfter(10 * kMillisecond, [state, fault_index, give_up] {
      TryAddrMapCorruption(state, fault_index, give_up);
    });
  }
}

// The victim kernel computes a bogus address inside the target cell's memory
// (here: the frame caching the target's canary page) and stores through the
// checked hardware path. Firewall on: the store is denied, the bus error
// panics the victim -- damage contained. Firewall checking off (the
// wild-write fixture): the store lands in the target's page cache and the
// canary oracle must flag the corruption.
void InjectWildWrite(InjectionState& state, size_t fault_index) {
  const FaultSpec& fault = state.spec->faults[fault_index];
  HiveSystem& sys = *state.sys;
  Cell& writer = sys.cell(fault.victim);
  Cell& target = sys.cell(fault.target);
  if (!sys.CellReachable(fault.victim) || !sys.CellReachable(fault.target)) {
    return;
  }
  // Materialize the target's canary page in its page cache so the scribble
  // has a live frame to hit (a read-only lookup by the target itself).
  Ctx tctx = target.MakeCtx();
  auto handle = target.fs().Open(tctx, CanaryPath(fault.target));
  if (!handle.ok()) {
    return;
  }
  auto page = target.fs().GetPage(tctx, *handle, 0, /*want_write=*/false,
                                  hive::FileSystem::AccessPath::kSyscall);
  if (!page.ok()) {
    return;
  }
  base::Rng garbage_rng(state.spec->seed ^ (0xBADull << 32) ^ fault_index);
  std::vector<uint8_t> garbage(64);
  for (uint8_t& byte : garbage) {
    byte = static_cast<uint8_t>(garbage_rng.Next());
  }
  if (state.spec->salvage) {
    // Salvage scenarios: the victim first takes a writable import of one
    // canary page, so the target holds a write-exported page (a discard
    // candidate with a checksum baseline) when the victim later dies. With
    // the firewall on the import must cover a *different* page than the
    // scribble below -- the grant would otherwise let the "wild" store land
    // legitimately -- and recovery salvages it because the denied scribble
    // never touched it. With checking off (--bug=salvage_unchecked) the
    // import covers the scribbled page itself, so blind adoption keeps the
    // corrupt bytes and checked adoption rejects them.
    const uint64_t import_page = state.spec->disable_firewall ? 0 : 1;
    Ctx wctx = writer.MakeCtx();
    auto whandle = writer.fs().Open(wctx, CanaryPath(fault.target));
    if (whandle.ok()) {
      auto wpage = writer.fs().GetPage(wctx, *whandle, import_page, /*want_write=*/true,
                                       hive::FileSystem::AccessPath::kSyscall);
      if (wpage.ok()) {
        writer.fs().ReleasePage(wctx, *wpage);
      }
    }
  }
  const int writer_cpu = sys.machine().FirstCpuOfNode(writer.first_node());
  state.injected[fault_index] = true;
  try {
    sys.machine().mem().Write(writer_cpu, (*page)->frame + 128, garbage);
    state.wild_write_frames.push_back((*page)->frame);
    // hive-lint: allow(R3): injected wild write from the fault harness; the firewall trap is converted into the victim kernel's panic, as section 4.1 prescribes.
  } catch (const flash::BusError&) {
    std::ostringstream reason;
    reason << "wild write into cell " << fault.target << " denied by firewall";
    writer.Panic(reason.str());
  }
}

// Seed-driven repeated kill/rejoin cycles of rotating victims. Each cycle
// fails the current victim's node, then polls until auto-reintegration has
// restored the node and rebooted the kernel, then draws the next victim and
// inter-kill gap from the storm's own deterministic stream. One gap in three
// is short enough (1 ms) to land the next kill inside the prior victim's
// warm-rejoin window, exercising a membership change during live rejoin.
void DriveRebootStorm(const std::shared_ptr<InjectionState>& state, size_t fault_index,
                      uint32_t cycle, CellId victim, Time until);

// Polls every 2 ms until the cycle's victim is a live, unconfirmed-failed,
// not-in-recovery member again (or the storm window closes), then schedules
// the next kill cycle.
void WaitForStormRejoin(const std::shared_ptr<InjectionState>& state, size_t fault_index,
                        uint32_t cycle, CellId victim, Time until) {
  HiveSystem& sys = *state->sys;
  if (sys.machine().Now() >= until) {
    return;
  }
  if (!sys.CellReachable(victim) || sys.CellConfirmedFailed(victim) ||
      sys.cell(victim).in_recovery()) {
    sys.machine().events().ScheduleAfter(
        2 * kMillisecond, [state, fault_index, cycle, victim, until] {
          WaitForStormRejoin(state, fault_index, cycle, victim, until);
        });
    return;
  }
  base::Rng rng(state->spec->seed ^ (0x5706ull << 32) ^
                (static_cast<uint64_t>(fault_index) << 8) ^ cycle);
  const CellId n = static_cast<CellId>(sys.num_cells());
  const CellId next = static_cast<CellId>(
      (victim + 1 + static_cast<CellId>(rng.Below(static_cast<uint64_t>(n - 1)))) % n);
  const Time gap =
      rng.OneIn(3) ? 1 * kMillisecond : static_cast<Time>(20 + rng.Below(80)) * kMillisecond;
  sys.machine().events().ScheduleAfter(gap, [state, fault_index, cycle, next, until] {
    DriveRebootStorm(state, fault_index, cycle + 1, next, until);
  });
}

void DriveRebootStorm(const std::shared_ptr<InjectionState>& state, size_t fault_index,
                      uint32_t cycle, CellId victim, Time until) {
  const FaultSpec& fault = state->spec->faults[fault_index];
  HiveSystem& sys = *state->sys;
  if (cycle >= fault.storm_cycles || sys.machine().Now() >= until) {
    return;
  }
  // Hold the kill while the victim is unreachable or mid-recovery, and keep
  // at least two survivors after the kill so a recovery master exists.
  if (!sys.CellReachable(victim) || sys.cell(victim).in_recovery() ||
      sys.LiveCells().size() < 3) {
    sys.machine().events().ScheduleAfter(
        2 * kMillisecond, [state, fault_index, cycle, victim, until] {
          DriveRebootStorm(state, fault_index, cycle, victim, until);
        });
    return;
  }
  sys.machine().FailNode(sys.cell(victim).first_node());
  state->injected[fault_index] = true;
  WaitForStormRejoin(state, fault_index, cycle, victim, until);
}

// Installs one time-windowed message-fault plan on the SIPS substrate. Plans
// are evaluated by send time, so installation happens at scenario setup; the
// fault is recorded as landed immediately (the window is guaranteed active).
void InstallMessageFaultPlan(InjectionState& state, size_t fault_index) {
  const FaultSpec& fault = state.spec->faults[fault_index];
  HiveSystem& sys = *state.sys;
  flash::Sips& sips = sys.machine().sips();
  if (sips.fault_model() == nullptr) {
    sips.EnableFaultModel(state.spec->seed ^ 0x6D7367666Cull);
  }
  flash::MessageFaultPlan plan;
  plan.start = fault.inject_at;
  plan.end = fault.inject_at + fault.duration;
  plan.drop_pm = fault.drop_pm;
  plan.dup_pm = fault.dup_pm;
  plan.delay_pm = fault.delay_pm;
  plan.corrupt_pm = fault.corrupt_pm;
  // Delayed lines stay well under the RPC spin window (50 us): delay models
  // a non-minimal route, not a partition.
  plan.delay_max_ns = 30 * hive::kMicrosecond;
  plan.src_node = fault.victim >= 0 ? sys.cell(fault.victim).first_node() : -1;
  plan.dst_node = fault.target >= 0 ? sys.cell(fault.target).first_node() : -1;
  sips.fault_model()->AddPlan(plan);
  state.injected[fault_index] = true;
}

// Drives a steady stream of non-idempotent intercell RPCs (borrow one frame
// from the neighbor cell, then return it) for message-fault scenarios. The
// workloads' own RPC mix is bursty and can quiesce before a fault window
// opens; without this traffic the at-most-once and liveness oracles would
// pass vacuously.
void ProbeIntercellRpc(const std::shared_ptr<InjectionState>& state, Time until) {
  HiveSystem& sys = *state->sys;
  const int n = sys.num_cells();
  for (CellId c = 0; c < n; ++c) {
    const CellId peer = (c + 1) % n;
    if (peer == c || !sys.CellReachable(c) || !sys.CellReachable(peer)) {
      continue;
    }
    Cell& cell = sys.cell(c);
    if (cell.in_recovery() || sys.cell(peer).in_recovery()) {
      continue;
    }
    Ctx ctx = cell.MakeCtx();
    hive::RpcArgs borrow;
    borrow.w[0] = static_cast<uint64_t>(c);
    borrow.w[1] = 1;
    hive::RpcReply frames;
    const base::Status status =
        cell.rpc().Call(ctx, peer, hive::MsgType::kBorrowFrames, borrow, &frames);
    if (status.ok() && frames.w[0] >= 1) {
      hive::RpcArgs give_back;
      give_back.w[0] = static_cast<uint64_t>(c);
      give_back.w[1] = frames.w[1];
      hive::RpcReply ignored;
      (void)cell.rpc().Call(ctx, peer, hive::MsgType::kReturnFrame, give_back, &ignored);
    }
  }
  if (sys.machine().Now() + 5 * kMillisecond <= until) {
    sys.machine().events().ScheduleAfter(
        5 * kMillisecond, [state, until] { ProbeIntercellRpc(state, until); });
  }
}

// ---------------------------------------------------------------------------
// Rogue-cell fault family.
// ---------------------------------------------------------------------------

// The rogue keeps flooding every peer with null requests until it is excised
// (or the scenario window closes). Bursts are interleaved across peers so all
// survivors cross the babble threshold nearly together and can corroborate
// each other's kBabbling evidence from their own incoming-rate counters.
void DriveRogueBabble(const std::shared_ptr<InjectionState>& state, CellId rogue,
                      Time until) {
  HiveSystem& sys = *state->sys;
  if (!sys.CellReachable(rogue) || sys.CellConfirmedFailed(rogue)) {
    return;
  }
  Cell& cell = sys.cell(rogue);
  for (CellId peer = 0; peer < sys.num_cells(); ++peer) {
    if (peer == rogue || !sys.CellReachable(peer)) {
      continue;
    }
    for (int burst = 0; burst < 30; ++burst) {
      if (!sys.CellReachable(rogue) || sys.CellConfirmedFailed(rogue)) {
        return;  // Excised mid-flood by a peer's babble throttle.
      }
      Ctx ctx = cell.MakeCtx();
      hive::RpcArgs args;
      hive::RpcReply reply;
      (void)cell.rpc().Call(ctx, peer, hive::MsgType::kNull, args, &reply);
    }
  }
  if (sys.machine().Now() + kMillisecond <= until) {
    sys.machine().events().ScheduleAfter(kMillisecond, [state, rogue, until] {
      DriveRogueBabble(state, rogue, until);
    });
  }
}

// The rogue repeatedly accuses the same healthy cell. Voting refuses to kill
// the accused both times, and the second voted-down alert turns the strike
// counter against the rogue itself (paper section 4.3).
void DriveRogueAccusations(const std::shared_ptr<InjectionState>& state, CellId rogue,
                           CellId target, Time until) {
  HiveSystem& sys = *state->sys;
  if (!sys.CellReachable(rogue) || sys.CellConfirmedFailed(rogue)) {
    return;
  }
  if (sys.CellReachable(target)) {
    Ctx ctx = sys.cell(rogue).MakeCtx();
    sys.HandleAlert(ctx, rogue, target, hive::HintReason::kRpcTimeout);
  }
  if (sys.machine().Now() + 30 * kMillisecond <= until) {
    sys.machine().events().ScheduleAfter(30 * kMillisecond, [state, rogue, target, until] {
      DriveRogueAccusations(state, rogue, target, until);
    });
  }
}

// Periodic null-RPC heartbeats between every pair of live cells (rogue-family
// scenarios only). A mute rogue surfaces as retry exhaustion (kRpcTimeout
// hints come from the transport itself); a garbling rogue surfaces here, when
// a reply that must be all-zero comes back with garbage payload words.
void DriveHeartbeats(const std::shared_ptr<InjectionState>& state, Time until) {
  HiveSystem& sys = *state->sys;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!sys.CellReachable(c) || sys.cell(c).in_recovery()) {
      continue;
    }
    Cell& cell = sys.cell(c);
    for (CellId peer = 0; peer < sys.num_cells(); ++peer) {
      if (peer == c || !sys.CellReachable(peer) || sys.cell(peer).in_recovery()) {
        continue;
      }
      Ctx ctx = cell.MakeCtx();
      hive::RpcArgs args;
      hive::RpcReply reply;
      const base::Status status =
          cell.rpc().Call(ctx, peer, hive::MsgType::kNull, args, &reply);
      if (!status.ok()) {
        continue;  // Timeout path already raised its own hint.
      }
      bool garbage = false;
      for (uint64_t word : reply.w) {
        garbage = garbage || word != 0;
      }
      if (garbage) {
        hive::HintEvidence evidence;
        evidence.structure = hive::EvidenceStructure::kRpcReply;
        cell.detector().RaiseHintWithEvidence(ctx, peer,
                                              hive::HintReason::kInvariantMismatch,
                                              evidence);
      }
    }
  }
  if (sys.machine().Now() + 20 * kMillisecond <= until) {
    sys.machine().events().ScheduleAfter(
        20 * kMillisecond, [state, until] { DriveHeartbeats(state, until); });
  }
}

// Periodic careful-reference walks of every other live cell's published probe
// structures (bounded chain chase + seqlock read). Corruption planted by a
// rogue surfaces here as a kCarefulCheckFailed hint with structural evidence
// that agreement voters re-walk themselves. In the no-hop-bound fixture the
// chase runs with the bound effectively removed and cycle detection off, so a
// cyclic chain racks up the hop count the no-survivor-hang oracle flags.
void ProbeRemoteStructures(const std::shared_ptr<InjectionState>& state, Time until) {
  HiveSystem& sys = *state->sys;
  const bool no_hop_bound = state->spec->disable_hop_bound;
  const int max_hops = no_hop_bound ? 4096 : 16;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    if (!sys.CellReachable(c) || sys.cell(c).in_recovery()) {
      continue;
    }
    Cell& prober = sys.cell(c);
    for (CellId peer = 0; peer < sys.num_cells(); ++peer) {
      if (peer == c || !sys.CellReachable(peer) || sys.cell(peer).in_recovery()) {
        continue;
      }
      Cell& suspect = sys.cell(peer);
      const hive::PhysAddr head = suspect.chain_head_addr();
      if (head == 0) {
        continue;
      }
      Ctx ctx = prober.MakeCtx();
      hive::CarefulRef careful(&ctx, &prober.machine().mem(), prober.costs(), peer,
                               suspect.mem_base(), suspect.mem_size());
      auto walk = careful.ChaseChain(head, hive::kTagChainNode, max_hops,
                                     /*detect_cycles=*/!no_hop_bound);
      prober.detector().NoteTraversal(careful.last_chain_hops());
      if (!walk.ok()) {
        hive::HintEvidence evidence;
        evidence.structure = hive::EvidenceStructure::kChain;
        evidence.structure_addr = head;
        prober.detector().RaiseHintWithEvidence(
            ctx, peer, hive::HintReason::kCarefulCheckFailed, evidence);
        continue;
      }
      const hive::PhysAddr block = suspect.seq_block_addr();
      if (block == 0) {
        continue;
      }
      auto snap = careful.ReadSeqlocked(block, hive::kTagSeqBlock, /*max_retries=*/3);
      if (!snap.ok() || snap->word1 != ~snap->word0) {
        hive::HintEvidence evidence;
        evidence.structure = hive::EvidenceStructure::kSeqBlock;
        evidence.structure_addr = block;
        prober.detector().RaiseHintWithEvidence(
            ctx, peer, hive::HintReason::kCarefulCheckFailed, evidence);
      }
    }
  }
  if (sys.machine().Now() + 15 * kMillisecond <= until) {
    sys.machine().events().ScheduleAfter(
        15 * kMillisecond, [state, until] { ProbeRemoteStructures(state, until); });
  }
}

// Turns the victim Byzantine: behaviour flags for the clock / RPC / vote axes
// and raw-path corruption of the victim's own published probe structures for
// the heap axes (a cell's own bug scribbling its own memory -- damage to
// others can only flow through checked reads of that memory). Babbling and
// repeated accusations need ongoing activity, so they run as drivers.
void InjectRogue(const std::shared_ptr<InjectionState>& state, size_t fault_index,
                 Time drive_until) {
  const FaultSpec& fault = state->spec->faults[fault_index];
  HiveSystem& sys = *state->sys;
  if (!sys.CellReachable(fault.victim)) {
    return;
  }
  Cell& victim = sys.cell(fault.victim);
  const uint32_t axes = fault.rogue_axes;

  hive::RogueBehavior behavior;
  behavior.active = true;
  behavior.clock_freeze = (axes & kRogueClockFreeze) != 0;
  behavior.clock_drift = (axes & kRogueClockDrift) != 0;
  behavior.rpc_silent = (axes & kRogueRpcSilence) != 0;
  behavior.rpc_garbage = (axes & kRogueRpcGarbage) != 0;
  behavior.vote_contrarian = (axes & kRogueVoteContrarian) != 0;
  behavior.garbage_seed = state->spec->seed ^ (0x90609ull << 32) ^ fault_index;
  victim.SetRogueBehavior(behavior);

  const uint32_t heap_axes =
      kRogueHeapScribble | kRogueHeapBadPtr | kRogueHeapCycle | kRogueHeapTorn;
  if ((axes & heap_axes) != 0) {
    flash::FaultInjector injector(&sys.machine(),
                                  state->spec->seed ^ (0xBADull << 32) ^ fault_index);
    const std::vector<hive::PhysAddr>& nodes = victim.chain_node_addrs();
    if ((axes & kRogueHeapScribble) != 0 && nodes.size() > 1) {
      // Scribble the second node's type tag: the walk passes the head, then
      // the careful reference protocol's tag check must refuse the node.
      injector.CorruptTypeTag(nodes[1] - hive::KernelHeap::kHeaderSize + 4, 0xDEADBEEFu);
    }
    if ((axes & kRogueHeapBadPtr) != 0 && !nodes.empty()) {
      // Bend the head's next pointer into another cell's range: the chase
      // must refuse to follow a pointer outside the suspect's memory.
      injector.WriteWord(nodes[0] + 8, sys.cell(fault.target).mem_base() + 64);
    }
    if ((axes & kRogueHeapCycle) != 0 && !nodes.empty()) {
      injector.WriteWord(nodes.back() + 8, victim.chain_head_addr());
    }
    if ((axes & kRogueHeapTorn) != 0 && victim.seq_block_addr() != 0) {
      // A writer died mid-update: odd sequence word plus a half-written
      // payload. Generation-retry readers must give up, never spin forever.
      injector.WriteWord(victim.seq_block_addr(), 3);
      injector.WriteWord(victim.seq_block_addr() + 8, injector.rng().Next());
    }
  }
  state->injected[fault_index] = true;

  if ((axes & kRogueRpcBabble) != 0) {
    DriveRogueBabble(state, fault.victim, drive_until);
  }
  if ((axes & kRogueVoteAccuse) != 0) {
    DriveRogueAccusations(state, fault.victim, fault.target, drive_until);
  }
}

// A buggy detector on the accuser cell raises a hint against a healthy cell.
// Agreement (voting or the oracle) must refuse to kill the accused.
void InjectFalseAccusation(InjectionState& state, size_t fault_index) {
  const FaultSpec& fault = state.spec->faults[fault_index];
  HiveSystem& sys = *state.sys;
  Cell& accuser = sys.cell(fault.victim);
  if (!sys.CellReachable(fault.victim) || !sys.CellReachable(fault.target)) {
    return;
  }
  state.injected[fault_index] = true;
  Ctx ctx = accuser.MakeCtx();
  sys.HandleAlert(ctx, fault.victim, fault.target, hive::HintReason::kRpcTimeout);
}

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t Fnv1a(uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t ComputeFingerprint(const ScenarioResult& result, HiveSystem& sys) {
  uint64_t hash = 0xCBF29CE484222325ull;
  hash = Fnv1a(hash, result.spec.seed);
  hash = Fnv1a(hash, static_cast<uint64_t>(result.end_time));
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    Cell& cell = sys.cell(c);
    uint64_t state = cell.alive() ? 1u : 0u;
    state |= cell.in_recovery() ? 2u : 0u;
    state |= sys.CellConfirmedFailed(c) ? 4u : 0u;
    hash = Fnv1a(hash, state);
    hash = Fnv1a(hash, cell.panic_reason());
  }
  for (bool landed : result.injected) {
    hash = Fnv1a(hash, landed ? 1u : 0u);
  }
  hash = Fnv1a(hash, static_cast<uint64_t>(sys.recovery().recoveries_run()));
  hash = Fnv1a(hash, static_cast<uint64_t>(result.corrupt_outputs + 1));
  for (const OracleViolation& violation : result.violations) {
    hash = Fnv1a(hash, violation.ToString());
  }
  return hash;
}

}  // namespace

std::string ScenarioResult::Summary() const {
  std::ostringstream out;
  out << (violated() ? "VIOLATION" : "ok") << " " << spec.ToString()
      << " excisions=" << excisions << " fingerprint=0x" << std::hex << fingerprint
      << std::dec;
  return out.str();
}

std::string ScenarioResult::ViolationReport() const {
  std::ostringstream out;
  out << "containment violation in scenario " << spec.index << ":\n";
  out << "  " << spec.ToString() << "\n";
  for (const OracleViolation& violation : violations) {
    out << "  - " << violation.ToString() << "\n";
  }
  out << "  repro: " << spec.ReproLine() << "\n";
  return out.str();
}

ScenarioResult RunScenario(const ScenarioSpec& spec, const RunOptions& run) {
  ScenarioResult result;
  result.spec = spec;

  flash::Machine machine(CampaignConfig(spec.num_cells), spec.seed);
  // Parallel simulation core: slice dispatch snaps to a grid of one tenth of
  // the 10 ms clock tick -- the "minor tick" real kernels dispatch on -- so
  // different cells' compute slices line up into common safe windows. The
  // grid is applied for every thread count (including 1): scenario outcomes
  // are a function of the spec alone, never of --sim-threads, which is the
  // equivalence oracle sim_parallel_equivalence_test pins.
  machine.EnableParallelSim(run.sim_threads, hive::KernelCosts{}.clock_tick_period_ns / 10);
  HiveOptions options;
  options.num_cells = spec.num_cells;
  options.agreement_mode = spec.agreement_mode;
  options.auto_reintegrate = spec.auto_reintegrate;
  options.salvage_pages = spec.salvage;
  options.salvage_verify = !spec.bug_salvage_unchecked;
  options.live_rejoin = spec.reboot_storm_only;
  HiveSystem sys(&machine, options);
  sys.Boot();
  if (spec.disable_firewall) {
    machine.firewall().set_checking_enabled(false);
  }
  if (spec.bug_no_dedup) {
    // Seeded-bug mode: suppression is broken on exactly one cell, so only
    // duplicates landing on that cell's non-idempotent traffic are symptoms.
    if (spec.num_cells > kBugNoDedupCell) {
      sys.cell(kBugNoDedupCell).rpc().set_duplicate_suppression(false);
    }
  } else if (spec.disable_rpc_dedup) {
    for (CellId c = 0; c < spec.num_cells; ++c) {
      sys.cell(c).rpc().set_duplicate_suppression(false);
    }
  }

  CanaryState canaries = SetUpCanaries(spec, sys);

  // Workloads. Setup happens before any fault can fire (earliest inject_at is
  // 5 ms of simulated time; setup charges no event-queue delay).
  std::unique_ptr<workloads::PmakeWorkload> pmake;
  std::unique_ptr<workloads::RaytraceWorkload> raytrace;
  std::unique_ptr<workloads::OceanWorkload> ocean;
  std::vector<ProcId> pids;
  const bool want_pmake =
      spec.workload == WorkloadKind::kPmake || spec.workload == WorkloadKind::kMixed;
  const bool want_raytrace =
      spec.workload == WorkloadKind::kRaytrace || spec.workload == WorkloadKind::kMixed;
  if (want_pmake) {
    pmake = std::make_unique<workloads::PmakeWorkload>(&sys, CampaignPmake(spec));
    pmake->Setup();
    auto started = pmake->Start();
    pids.insert(pids.end(), started.begin(), started.end());
  }
  if (want_raytrace) {
    raytrace = std::make_unique<workloads::RaytraceWorkload>(&sys, CampaignRaytrace(spec));
    auto started = raytrace->Start();
    pids.insert(pids.end(), started.begin(), started.end());
  }
  if (spec.workload == WorkloadKind::kOcean) {
    ocean = std::make_unique<workloads::OceanWorkload>(&sys, CampaignOcean(spec));
    ocean->Setup();
    auto started = ocean->Start();
    pids.insert(pids.end(), started.begin(), started.end());
  }

  // Schedule the fault plan.
  auto state = std::make_shared<InjectionState>();
  state->sys = &sys;
  state->spec = &spec;
  state->injected.assign(spec.faults.size(), false);
  Time last_inject = 0;
  Time probe_until = 0;
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& fault = spec.faults[i];
    last_inject = std::max(last_inject, fault.inject_at);
    switch (fault.kind) {
      case FaultKind::kNodeFailure:
        machine.events().ScheduleAt(fault.inject_at,
                                    [state, i] { InjectNodeFailure(*state, i); });
        break;
      case FaultKind::kAddrMapCorruption: {
        const Time give_up = fault.inject_at + 400 * kMillisecond;
        machine.events().ScheduleAt(fault.inject_at, [state, i, give_up] {
          TryAddrMapCorruption(state, i, give_up);
        });
        break;
      }
      case FaultKind::kWildWrite:
        machine.events().ScheduleAt(fault.inject_at,
                                    [state, i] { InjectWildWrite(*state, i); });
        break;
      case FaultKind::kFalseAccusation:
        machine.events().ScheduleAt(fault.inject_at,
                                    [state, i] { InjectFalseAccusation(*state, i); });
        break;
      case FaultKind::kMessageFaults:
        InstallMessageFaultPlan(*state, i);
        last_inject = std::max(last_inject, fault.inject_at + fault.duration);
        probe_until = std::max(probe_until, fault.inject_at + fault.duration);
        break;
      case FaultKind::kRogueCell: {
        const Time drive_until = fault.inject_at + spec.settle_ns;
        machine.events().ScheduleAt(fault.inject_at, [state, i, drive_until] {
          InjectRogue(state, i, drive_until);
        });
        break;
      }
      case FaultKind::kRebootStorm: {
        const Time storm_until = fault.inject_at + fault.duration;
        const CellId first_victim = fault.victim;
        machine.events().ScheduleAt(fault.inject_at, [state, i, first_victim, storm_until] {
          DriveRebootStorm(state, i, /*cycle=*/0, first_victim, storm_until);
        });
        last_inject = std::max(last_inject, storm_until);
        break;
      }
    }
  }
  if (spec.rogue_only || spec.healthy_baseline) {
    // Publish the probe structures every survivor walks, then start the
    // heartbeat and structure probers. The healthy baseline runs the same
    // detectors over the same structures with no fault injected, proving
    // they raise no excision on their own (the sensitivity check).
    for (CellId c = 0; c < spec.num_cells; ++c) {
      sys.cell(c).PublishProbeStructures();
    }
    const Time drivers_until = last_inject + spec.settle_ns;
    machine.events().ScheduleAt(10 * kMillisecond, [state, drivers_until] {
      DriveHeartbeats(state, drivers_until);
    });
    machine.events().ScheduleAt(15 * kMillisecond, [state, drivers_until] {
      ProbeRemoteStructures(state, drivers_until);
    });
  }
  if (probe_until > 0) {
    // Keep probing a few quiet rounds past the last fault window so retry
    // exhaustion tails and quarantine probation can resolve.
    probe_until += 50 * kMillisecond;
    machine.events().ScheduleAt(
        5 * kMillisecond, [state, probe_until] { ProbeIntercellRpc(state, probe_until); });
  }

  // Run the workload (bounded), then settle long enough after the last
  // injection for clock monitoring, agreement and recovery to finish.
  if (!pids.empty()) {
    (void)sys.RunUntilDone(pids, 60 * kSecond);
  }
  machine.RunUntil(std::max(machine.Now(), last_inject) + spec.settle_ns);
  result.end_time = machine.Now();
  result.events_run = machine.events().total_run();
  result.injected = state->injected;

  // Output validation: each validator already skips dead cells and
  // unfinished jobs, but a dead pmake file server would count every output
  // as missing -- skip validation entirely in that case.
  int corrupt = -1;
  if (pmake != nullptr && sys.cell(CampaignPmake(spec).file_server).alive()) {
    corrupt = pmake->ValidateOutputs();
  }
  if (raytrace != nullptr) {
    const int tiles = raytrace->ValidateOutputs();
    corrupt = corrupt < 0 ? tiles : corrupt + tiles;
  }
  result.corrupt_outputs = corrupt;
  for (CellId c = 0; c < spec.num_cells; ++c) {
    result.excisions += sys.CellConfirmedFailed(c) ? 1 : 0;
  }
  result.pages_salvaged = static_cast<int>(sys.recovery().salvage_log().size());

  OracleInput input;
  input.spec = &spec;
  input.system = &sys;
  input.canaries = &canaries;
  input.injected = state->injected;
  input.corrupt_outputs = corrupt;
  input.wild_write_frames = state->wild_write_frames;
  result.violations = CheckAllOracles(input);

  result.fingerprint = ComputeFingerprint(result, sys);
  result.trace_signature = ComputeTraceSignature(sys);
  result.coverage = ExtractCoverage(sys, result.violations);
  return result;
}

}  // namespace campaign
