// Automatic scenario minimization.
//
// When a scenario trips an oracle, the raw spec may carry faults and workload
// volume that have nothing to do with the violation. The minimizer shrinks
// the spec while the violation persists: delta debugging (ddmin) over the
// fault sequence, then workload reduction (drop the workload, then its
// scale). The minimized spec keeps the original (master_seed, index) -- the
// repro line always references the scenario as generated; the minimized form
// is reported alongside it as the smallest spec that still violates.

#ifndef HIVE_SRC_CAMPAIGN_MINIMIZER_H_
#define HIVE_SRC_CAMPAIGN_MINIMIZER_H_

#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"

namespace campaign {

struct MinimizationResult {
  ScenarioSpec minimized;
  int runs = 0;        // Scenario executions the search spent.
  bool reduced = false;  // True if anything was dropped from the original.
};

// Shrinks `original` (which must currently violate an oracle) to a smaller
// spec that still violates. Runs at most `max_runs` scenario executions.
MinimizationResult MinimizeScenario(const ScenarioSpec& original, int max_runs = 64);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_MINIMIZER_H_
