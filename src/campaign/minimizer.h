// Automatic scenario minimization.
//
// When a scenario trips an oracle, the raw spec may carry faults and workload
// volume that have nothing to do with the violation. The minimizer shrinks
// the spec while the violation persists: delta debugging (ddmin) over the
// fault sequence, then workload reduction (drop the workload, then its
// scale). The minimized spec keeps the original (master_seed, index) -- the
// repro line always references the scenario as generated; the minimized form
// is reported alongside it as the smallest spec that still violates.

#ifndef HIVE_SRC_CAMPAIGN_MINIMIZER_H_
#define HIVE_SRC_CAMPAIGN_MINIMIZER_H_

#include <functional>
#include <string>

#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"

namespace campaign {

struct MinimizationResult {
  ScenarioSpec minimized;
  int runs = 0;        // Predicate evaluations the search spent.
  bool reduced = false;  // True if anything was dropped from the original.
};

// The property the minimizer preserves: "this candidate still violates".
using ViolationPredicate = std::function<bool(const ScenarioSpec&)>;

// Core search: shrinks `original` (for which `violates` must currently hold)
// to a smaller spec for which it still holds, evaluating the predicate at
// most `max_runs` times. Deterministic: the same (original, predicate
// behaviour, max_runs) always yields the same result. Exposed so unit tests
// can drive the search with synthetic predicates instead of full simulator
// runs.
MinimizationResult MinimizeScenarioWith(const ScenarioSpec& original, int max_runs,
                                        const ViolationPredicate& violates);

// Production wrapper: the predicate is a real scenario execution. When
// `target_oracle` is non-empty, a candidate only counts as violating if that
// specific oracle trips -- triage uses this so a bucket's minimized repro
// cannot drift to a different oracle's (smaller) violation.
MinimizationResult MinimizeScenario(const ScenarioSpec& original, int max_runs = 64,
                                    const std::string& target_oracle = "");

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_MINIMIZER_H_
