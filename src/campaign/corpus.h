// Persisted corpus of coverage-novel scenarios.
//
// A corpus entry does not store the scenario itself -- it stores the recipe:
// (master_seed, index, generator mode, mutation chain). Regeneration is
// deterministic (DeriveScenarioSeed + MutateScenario are pinned), so an entry
// written by one campaign replays byte-identically in another, on any worker
// count, with no reference to the run that discovered it.
//
// On-disk format (one entry per file, text, order fixed):
//   hive-corpus-v1
//   master_seed=7
//   index=12
//   mode=default
//   mutations=123,456      <- omitted when the chain is empty
// Unknown keys are tolerated (forward compatibility); a file missing
// master_seed/index/mode or with a bad value is skipped by LoadCorpusDir.

#ifndef HIVE_SRC_CAMPAIGN_CORPUS_H_
#define HIVE_SRC_CAMPAIGN_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/campaign/scenario.h"

namespace campaign {

struct CorpusEntry {
  uint64_t master_seed = 0;
  uint64_t index = 0;
  GeneratorOptions options;
  std::vector<uint64_t> mutation_chain;
};

// Stable names for the generator modes ("default", "wild_write", "no_dedup",
// "message", "rogue", "none", "no_hop_bound", "bug_no_dedup") and the
// inverse. These appear in corpus files on disk, so they are append-only.
const char* GeneratorModeName(const GeneratorOptions& options);
bool GeneratorModeFromName(std::string_view name, GeneratorOptions* out);

// Reconstructs the generator options a spec was produced under, from its mode
// flags. Used when admitting a scenario the driver generated itself.
GeneratorOptions OptionsFromSpec(const ScenarioSpec& spec);

// Deterministically rebuilds the scenario an entry describes.
ScenarioSpec RegenerateScenario(const CorpusEntry& entry);

// Text form (see the format comment above) and its inverse. Parse returns
// false on a missing header or required key.
std::string SerializeCorpusEntry(const CorpusEntry& entry);
bool ParseCorpusEntry(std::string_view text, CorpusEntry* out);

// Content-addressed file name for an entry ("entry-<fnv64 of text>.corpus"),
// so re-admitting the same recipe overwrites rather than duplicates.
std::string CorpusEntryFileName(const CorpusEntry& entry);

// Writes `entry` into `dir` (created if absent) under its content-addressed
// name. Returns false on I/O failure.
bool SaveCorpusEntry(const std::string& dir, const CorpusEntry& entry);

// Loads every parsable *.corpus file in `dir`, sorted by file name (a stable
// order: names are content hashes, identical for every loader). A missing
// directory yields an empty corpus.
std::vector<CorpusEntry> LoadCorpusDir(const std::string& dir);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_CORPUS_H_
