#include "src/campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "src/base/rng.h"
#include "src/campaign/corpus.h"
#include "src/campaign/coverage.h"

namespace campaign {
namespace {

// Per-batch slot cap: bounds the work-list memory of degenerate --batch
// values without changing results (batches are merged in slot order).
constexpr int kMaxBatchSize = 1024;

// Seed-domain separator for guided draw decisions, so the slot RNG never
// collides with the scenario-seed domain of DeriveScenarioSeed.
constexpr uint64_t kGuidedSeedSalt = 0x6775696465644831ull;

uint64_t CountLanded(const ScenarioResult& result) {
  uint64_t landed = 0;
  for (bool flag : result.injected) {
    landed += flag ? 1 : 0;
  }
  return landed;
}

}  // namespace

std::string CampaignFailure::Report() const {
  std::ostringstream out;
  out << result.ViolationReport();
  if (minimized && minimization.reduced) {
    out << "  minimized (" << minimization.runs << " runs): "
        << minimization.minimized.ToString() << "\n";
  }
  return out.str();
}

CampaignReport RunCampaign(const CampaignOptions& options) {
  CampaignReport report;
  GeneratorOptions gen_options;
  gen_options.wild_write_fixture = options.wild_write_fixture;
  gen_options.no_dedup_fixture = options.no_dedup_fixture;
  gen_options.message_faults_only = options.message_faults_only;
  gen_options.rogue_only = options.rogue_only;
  gen_options.healthy_baseline = options.healthy_baseline;
  gen_options.no_hop_bound_fixture = options.no_hop_bound_fixture;
  gen_options.bug_no_dedup = options.bug_no_dedup;
  gen_options.salvage = options.salvage;
  gen_options.reboot_storm_only = options.reboot_storm_only;
  gen_options.bug_salvage_unchecked = options.bug_salvage_unchecked;

  // Corpus pool: specs plus the recipe that regenerates each (parallel
  // vectors). Loaded entries become mutation bases; they are not re-run.
  std::vector<ScenarioSpec> pool;
  std::vector<CorpusEntry> pool_entries;
  if (!options.corpus_dir.empty()) {
    pool_entries = LoadCorpusDir(options.corpus_dir);
    pool.reserve(pool_entries.size());
    for (const CorpusEntry& entry : pool_entries) {
      pool.push_back(RegenerateScenario(entry));
    }
    report.corpus_loaded = pool_entries.size();
  }
  const bool replay = options.corpus_replay_only;
  // Admit coverage-novel scenarios into the pool when guiding, or when the
  // caller asked for a persisted corpus from a plain sweep.
  const bool admit = !replay && (options.guided || !options.corpus_dir.empty());

  CoverageMap coverage;
  report.merged_fingerprint = kFnvOffsetBasis;
  uint64_t exec_order = 0;

  // Runs one pre-built batch on the pool; results come back indexed by slot.
  auto run_batch = [&options](const std::vector<ScenarioSpec>& batch) {
    std::vector<ScenarioResult> results(batch.size());
    std::atomic<size_t> next_slot{0};
    RunOptions run;
    run.sim_threads = options.sim_threads;
    auto worker = [&batch, &results, &next_slot, run] {
      for (;;) {
        const size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
        if (slot >= batch.size()) {
          return;
        }
        results[slot] = RunScenario(batch[slot], run);
      }
    };
    const int workers = std::min<int>(std::max(1, options.workers),
                                      static_cast<int>(batch.size()));
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back(worker);
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
    }
    return results;
  };

  // Merges batch results in slot order: every downstream artifact (coverage,
  // corpus, failures, fingerprints, hooks) sees the same deterministic
  // sequence regardless of which worker ran which slot.
  auto merge = [&](std::vector<ScenarioResult>& results) {
    for (ScenarioResult& result : results) {
      ++exec_order;
      report.faults_injected += CountLanded(result);
      report.excisions += static_cast<uint64_t>(result.excisions);
      report.pages_salvaged += static_cast<uint64_t>(result.pages_salvaged);
      report.merged_fingerprint =
          FnvMix(report.merged_fingerprint, result.fingerprint);
      const size_t novel = coverage.Merge(result.coverage);
      if (admit && novel > 0) {
        CorpusEntry entry;
        entry.master_seed = result.spec.master_seed;
        entry.index = result.spec.index;
        entry.options = OptionsFromSpec(result.spec);
        entry.mutation_chain = result.spec.mutation_chain;
        if (options.corpus_dir.empty() ||
            SaveCorpusEntry(options.corpus_dir, entry)) {
          pool.push_back(result.spec);
          pool_entries.push_back(entry);
        }
      }
      if (options.on_result) {
        options.on_result(result);
      }
      if (result.violated()) {
        if (report.first_violation_order == 0) {
          report.first_violation_order = exec_order;
        }
        CampaignFailure failure;
        failure.order = exec_order;
        failure.result = std::move(result);
        report.failures.push_back(std::move(failure));
      }
    }
  };

  if (replay) {
    std::vector<ScenarioResult> results = run_batch(pool);
    merge(results);
  } else if (!options.guided && !options.stop_on_violation) {
    // Plain sweep: one batch holding the whole run (execution order ==
    // scenario index, as before the guided driver existed).
    std::vector<ScenarioSpec> batch;
    batch.reserve(options.num_scenarios);
    for (uint64_t index = 0; index < options.num_scenarios; ++index) {
      batch.push_back(GenerateScenario(options.master_seed, index, gen_options));
    }
    report.fresh_run = batch.size();
    std::vector<ScenarioResult> results = run_batch(batch);
    merge(results);
  } else {
    const int batch_size =
        std::min(kMaxBatchSize, std::max(1, options.batch_size));
    uint64_t fresh_index = 0;
    uint64_t generation = 0;
    while (exec_order < options.num_scenarios &&
           !(options.stop_on_violation && report.first_violation_order != 0)) {
      const uint64_t want = std::min<uint64_t>(
          static_cast<uint64_t>(batch_size), options.num_scenarios - exec_order);
      std::vector<ScenarioSpec> batch;
      batch.reserve(want);
      for (uint64_t slot = 0; slot < want; ++slot) {
        if (!options.guided || pool.empty()) {
          batch.push_back(
              GenerateScenario(options.master_seed, fresh_index++, gen_options));
          ++report.fresh_run;
          continue;
        }
        // The draw is a pure function of (master_seed, generation, slot), so
        // the batch work list -- and everything merged from it -- does not
        // depend on workers or timing.
        base::Rng slot_rng(DeriveScenarioSeed(options.master_seed ^ kGuidedSeedSalt,
                                              generation * 1024 + slot));
        if (slot_rng.Below(1000) <
            static_cast<uint64_t>(std::max(0, options.guided_fresh_pm))) {
          batch.push_back(
              GenerateScenario(options.master_seed, fresh_index++, gen_options));
          ++report.fresh_run;
        } else {
          const ScenarioSpec& base = pool[slot_rng.Below(pool.size())];
          batch.push_back(MutateScenario(base, slot_rng.Next()));
          ++report.mutants_run;
        }
      }
      std::vector<ScenarioResult> results = run_batch(batch);
      merge(results);
      ++generation;
    }
  }

  report.scenarios_run = exec_order;
  report.coverage_features = coverage.size();
  report.coverage_hash = coverage.Hash();
  report.corpus_size = pool.size();

  // Triage: bucket failures by (first tripped oracle, trace signature).
  // Failures are already in execution order, so the first member seen is the
  // bucket representative.
  std::map<std::pair<std::string, uint64_t>, size_t> bucket_index;
  for (size_t i = 0; i < report.failures.size(); ++i) {
    CampaignFailure& failure = report.failures[i];
    const std::pair<std::string, uint64_t> key(
        failure.result.violations[0].oracle, failure.result.trace_signature);
    auto found = bucket_index.find(key);
    if (found == bucket_index.end()) {
      bucket_index.emplace(key, report.buckets.size());
      TriageBucket bucket;
      bucket.oracle = key.first;
      bucket.trace_signature = key.second;
      bucket.count = 1;
      bucket.first_order = failure.order;
      bucket.repro = failure.result.spec.ReproLine();
      if (options.minimize) {
        failure.minimization = MinimizeScenario(
            failure.result.spec, options.max_minimize_runs, bucket.oracle);
        failure.minimized = true;
        bucket.minimized = failure.minimization.minimized.ToString();
        bucket.minimize_runs = failure.minimization.runs;
      } else {
        failure.minimization.minimized = failure.result.spec;
        bucket.minimized = failure.result.spec.ToString();
      }
      report.buckets.push_back(std::move(bucket));
    } else {
      ++report.buckets[found->second].count;
      failure.minimization.minimized = failure.result.spec;
    }
  }

  return report;
}

}  // namespace campaign
