#include "src/campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

namespace campaign {

std::string CampaignFailure::Report() const {
  std::ostringstream out;
  out << result.ViolationReport();
  if (minimized && minimization.reduced) {
    out << "  minimized (" << minimization.runs << " runs): "
        << minimization.minimized.ToString() << "\n";
  }
  return out.str();
}

CampaignReport RunCampaign(const CampaignOptions& options) {
  CampaignReport report;
  GeneratorOptions gen_options;
  gen_options.wild_write_fixture = options.wild_write_fixture;
  gen_options.no_dedup_fixture = options.no_dedup_fixture;
  gen_options.message_faults_only = options.message_faults_only;
  gen_options.rogue_only = options.rogue_only;
  gen_options.healthy_baseline = options.healthy_baseline;
  gen_options.no_hop_bound_fixture = options.no_hop_bound_fixture;

  std::atomic<uint64_t> next_index{0};
  std::atomic<uint64_t> faults_injected{0};
  std::atomic<uint64_t> excisions{0};
  std::mutex mutex;  // Guards report.failures and the progress hook.

  auto worker = [&] {
    for (;;) {
      const uint64_t index = next_index.fetch_add(1, std::memory_order_relaxed);
      if (index >= options.num_scenarios) {
        return;
      }
      ScenarioSpec spec = GenerateScenario(options.master_seed, index, gen_options);
      ScenarioResult result = RunScenario(spec);
      uint64_t landed = 0;
      for (bool flag : result.injected) {
        landed += flag ? 1 : 0;
      }
      faults_injected.fetch_add(landed, std::memory_order_relaxed);
      excisions.fetch_add(static_cast<uint64_t>(result.excisions),
                          std::memory_order_relaxed);
      if (result.violated() || options.on_result) {
        std::lock_guard<std::mutex> lock(mutex);
        if (options.on_result) {
          options.on_result(result);
        }
        if (result.violated()) {
          CampaignFailure failure;
          failure.result = std::move(result);
          report.failures.push_back(std::move(failure));
        }
      }
    }
  };

  const int workers = std::max(1, options.workers);
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
  }

  report.scenarios_run = options.num_scenarios;
  report.faults_injected = faults_injected.load();
  report.excisions = excisions.load();
  std::sort(report.failures.begin(), report.failures.end(),
            [](const CampaignFailure& a, const CampaignFailure& b) {
              return a.result.spec.index < b.result.spec.index;
            });

  if (options.minimize) {
    for (CampaignFailure& failure : report.failures) {
      failure.minimization =
          MinimizeScenario(failure.result.spec, options.max_minimize_runs);
      failure.minimized = true;
    }
  } else {
    for (CampaignFailure& failure : report.failures) {
      failure.minimization.minimized = failure.result.spec;
    }
  }
  return report;
}

}  // namespace campaign
