// Isolated execution of one campaign scenario.
//
// Each run builds its own Machine + HiveSystem from the scenario seed, so any
// number of scenarios can execute concurrently on different threads: the
// discrete-event simulation is single-threaded and keeps all mutable state
// inside the instance.

#ifndef HIVE_SRC_CAMPAIGN_RUNNER_H_
#define HIVE_SRC_CAMPAIGN_RUNNER_H_

#include <string>
#include <vector>

#include "src/campaign/oracles.h"
#include "src/campaign/scenario.h"

namespace campaign {

struct ScenarioResult {
  ScenarioSpec spec;
  // Which faults actually landed (parallel to spec.faults).
  std::vector<bool> injected;
  std::vector<OracleViolation> violations;
  int corrupt_outputs = -1;  // -1 = outputs not validated this run.
  int excisions = 0;         // Cells confirmed failed by agreement this run.
  int pages_salvaged = 0;    // Pages adopted instead of discarded by recovery.
  Time end_time = 0;         // Simulated time when the scenario finished.
  uint64_t events_run = 0;   // Simulator events executed (throughput metric).
  // FNV-1a digest of the run's observable outcome (cell states, panic
  // reasons, injections, recovery count, violations). Two runs of the same
  // scenario -- on any thread, in any batch -- must produce equal
  // fingerprints; campaign_test and the repro flow rely on this.
  uint64_t fingerprint = 0;
  // Coverage feature set (sorted, deduplicated; see coverage.h). Drives
  // corpus admission in the guided campaign driver.
  std::vector<uint64_t> coverage;
  // Order-sensitive digest of the per-cell trace-event kind sequences; triage
  // buckets failures by (oracle, trace_signature).
  uint64_t trace_signature = 0;

  bool violated() const { return !violations.empty(); }
  // One-line outcome summary (used by the CLI's verbose mode).
  std::string Summary() const;
  // Multi-line violation report including the repro line.
  std::string ViolationReport() const;
};

// Runtime knobs that must NOT affect the scenario's outcome. `sim_threads`
// selects the worker count of the parallel simulation core; fingerprints and
// repro lines are byte-identical for every value (CI pins 1 vs 4).
struct RunOptions {
  int sim_threads = 1;
};

// Runs the scenario to completion and judges it with the oracle library.
ScenarioResult RunScenario(const ScenarioSpec& spec, const RunOptions& run = {});

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_RUNNER_H_
