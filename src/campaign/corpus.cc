#include "src/campaign/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace campaign {
namespace {

constexpr char kHeader[] = "hive-corpus-v1";

// FNV-1a over the serialized text, for content-addressed file names.
uint64_t HashText(const std::string& text) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const char* GeneratorModeName(const GeneratorOptions& options) {
  if (options.bug_salvage_unchecked) {
    return "bug_salvage_unchecked";
  }
  if (options.wild_write_fixture) {
    return "wild_write";
  }
  if (options.reboot_storm_only) {
    return "reboot_storm";
  }
  if (options.salvage) {
    return "salvage";
  }
  if (options.no_dedup_fixture) {
    return "no_dedup";
  }
  if (options.bug_no_dedup) {
    return "bug_no_dedup";
  }
  if (options.no_hop_bound_fixture) {
    return "no_hop_bound";
  }
  if (options.rogue_only) {
    return "rogue";
  }
  if (options.healthy_baseline) {
    return "none";
  }
  if (options.message_faults_only) {
    return "message";
  }
  return "default";
}

bool GeneratorModeFromName(std::string_view name, GeneratorOptions* out) {
  *out = GeneratorOptions{};
  if (name == "default") {
    return true;
  }
  if (name == "wild_write") {
    out->wild_write_fixture = true;
    return true;
  }
  if (name == "no_dedup") {
    out->no_dedup_fixture = true;
    return true;
  }
  if (name == "bug_no_dedup") {
    out->bug_no_dedup = true;
    return true;
  }
  if (name == "no_hop_bound") {
    out->no_hop_bound_fixture = true;
    return true;
  }
  if (name == "rogue") {
    out->rogue_only = true;
    return true;
  }
  if (name == "none") {
    out->healthy_baseline = true;
    return true;
  }
  if (name == "message") {
    out->message_faults_only = true;
    return true;
  }
  if (name == "reboot_storm") {
    out->reboot_storm_only = true;
    return true;
  }
  if (name == "salvage") {
    out->salvage = true;
    return true;
  }
  if (name == "bug_salvage_unchecked") {
    out->bug_salvage_unchecked = true;
    return true;
  }
  return false;
}

GeneratorOptions OptionsFromSpec(const ScenarioSpec& spec) {
  GeneratorOptions options;
  if (spec.bug_salvage_unchecked) {
    // Before disable_firewall: the seeded salvage bug also turns checking off.
    options.bug_salvage_unchecked = true;
  } else if (spec.disable_firewall) {
    options.wild_write_fixture = true;
  } else if (spec.reboot_storm_only) {
    options.reboot_storm_only = true;
  } else if (spec.bug_no_dedup) {
    options.bug_no_dedup = true;
  } else if (spec.message_faults_only && spec.disable_rpc_dedup) {
    options.no_dedup_fixture = true;
  } else if (spec.disable_hop_bound) {
    options.no_hop_bound_fixture = true;
  } else if (spec.rogue_only) {
    options.rogue_only = true;
  } else if (spec.healthy_baseline) {
    options.healthy_baseline = true;
  } else if (spec.message_faults_only) {
    options.message_faults_only = true;
  }
  // Orthogonal to the plan distribution: the salvage sweep runs default
  // plans with salvage on. Storm and seeded-bug modes imply it themselves.
  if (spec.salvage && !options.reboot_storm_only && !options.bug_salvage_unchecked) {
    options.salvage = true;
  }
  return options;
}

ScenarioSpec RegenerateScenario(const CorpusEntry& entry) {
  const ScenarioSpec root =
      GenerateScenario(entry.master_seed, entry.index, entry.options);
  return ApplyMutationChain(root, entry.mutation_chain);
}

std::string SerializeCorpusEntry(const CorpusEntry& entry) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "master_seed=" << entry.master_seed << "\n";
  out << "index=" << entry.index << "\n";
  out << "mode=" << GeneratorModeName(entry.options) << "\n";
  if (!entry.mutation_chain.empty()) {
    out << "mutations=" << FormatMutationChain(entry.mutation_chain) << "\n";
  }
  return out.str();
}

bool ParseCorpusEntry(std::string_view text, CorpusEntry* out) {
  *out = CorpusEntry{};
  bool saw_header = false;
  bool saw_seed = false;
  bool saw_index = false;
  bool saw_mode = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    if (!saw_header) {
      if (line != kHeader) {
        return false;
      }
      saw_header = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return false;
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "master_seed") {
      saw_seed = ParseU64(value, &out->master_seed);
      if (!saw_seed) {
        return false;
      }
    } else if (key == "index") {
      saw_index = ParseU64(value, &out->index);
      if (!saw_index) {
        return false;
      }
    } else if (key == "mode") {
      saw_mode = GeneratorModeFromName(value, &out->options);
      if (!saw_mode) {
        return false;
      }
    } else if (key == "mutations") {
      if (!ParseMutationChain(value, &out->mutation_chain)) {
        return false;
      }
    }
    // Unknown keys: tolerated for forward compatibility.
  }
  return saw_header && saw_seed && saw_index && saw_mode;
}

std::string CorpusEntryFileName(const CorpusEntry& entry) {
  char name[40];
  std::snprintf(name, sizeof(name), "entry-%016llx.corpus",
                static_cast<unsigned long long>(HashText(SerializeCorpusEntry(entry))));
  return name;
}

bool SaveCorpusEntry(const std::string& dir, const CorpusEntry& entry) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return false;
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / CorpusEntryFileName(entry);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << SerializeCorpusEntry(entry);
  return static_cast<bool>(out);
}

std::vector<CorpusEntry> LoadCorpusDir(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return entries;  // Missing or unreadable directory: empty corpus.
  }
  std::vector<std::filesystem::path> files;
  for (const std::filesystem::directory_entry& file : it) {
    if (file.path().extension() == ".corpus") {
      files.push_back(file.path());
    }
  }
  // Names are content hashes, so this order is stable across machines and
  // independent of directory enumeration order.
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    if (!in) {
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    CorpusEntry entry;
    if (ParseCorpusEntry(text.str(), &entry)) {
      entries.push_back(entry);
    }
  }
  return entries;
}

}  // namespace campaign
