#include "src/campaign/coverage.h"

#include <bit>

#include "src/core/agreement.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/hive_system.h"
#include "src/core/recovery.h"
#include "src/core/rpc.h"
#include "src/core/trace.h"

namespace campaign {
namespace {

using hive::Cell;
using hive::CellId;
using hive::HiveSystem;
using hive::TraceRecord;

// Feature-id domains. The domain keeps structurally different observations
// from colliding (a hint-reason bucket can never alias a trace bigram).
constexpr uint64_t kDomTraceBigram = 1;
constexpr uint64_t kDomHintReason = 2;
constexpr uint64_t kDomRpcCounter = 3;
constexpr uint64_t kDomMargin = 4;
constexpr uint64_t kDomOracle = 5;
constexpr uint64_t kDomCellState = 6;

// SplitMix64 avalanche of (domain, a, b) into a feature id. Stable across
// platforms: corpus files and CI logs refer to map hashes built from these.
uint64_t Feature(uint64_t domain, uint64_t a, uint64_t b) {
  uint64_t z = (domain << 56) ^ (a * 0x9E3779B97F4A7C15ull) ^
               (b + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// AFL-style log2 count bucketing: "once", "a few times" and "hammered" are
// different behaviours; 17 versus 18 occurrences is not.
uint64_t Log2Bucket(uint64_t value) {
  return static_cast<uint64_t>(std::bit_width(value));
}

// Near-miss margin metrics (kDomMargin `a` values). These track how close a
// passing scenario came to an oracle bound -- a scenario that walked 48 hops
// under the 64-hop hang bound is more interesting than one that walked 2.
constexpr uint64_t kMarginTraversalHops = 0;
constexpr uint64_t kMarginVoteTimeouts = 1;
constexpr uint64_t kMarginRoundCostMs = 2;
constexpr uint64_t kMarginRecoveries = 3;
constexpr uint64_t kMarginExcisions = 4;
constexpr uint64_t kMarginDeadCells = 5;

}  // namespace

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t FnvMixString(uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::vector<uint64_t> ExtractCoverage(HiveSystem& sys,
                                      const std::vector<OracleViolation>& violations) {
  std::set<uint64_t> features;
  uint64_t excised = 0;
  uint64_t dead = 0;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    Cell& cell = sys.cell(c);

    // Trace-event bigrams: consecutive pairs of event kinds in the retained
    // ring. The pair (kRpcRetry, kPeerQuarantined) is a different behaviour
    // from either event alone.
    const std::vector<TraceRecord> snapshot = cell.trace().Snapshot();
    for (size_t i = 0; i + 1 < snapshot.size(); ++i) {
      features.insert(Feature(kDomTraceBigram,
                              static_cast<uint64_t>(snapshot[i].event),
                              static_cast<uint64_t>(snapshot[i + 1].event)));
    }

    // Failure-detector hint table, bucketed per reason.
    for (hive::HintReason reason : hive::kAllHintReasons) {
      const uint64_t count = cell.detector().hints_for(reason);
      if (count > 0) {
        features.insert(Feature(kDomHintReason, static_cast<uint64_t>(reason),
                                Log2Bucket(count)));
      }
    }

    // RPC transport counters, bucketed per counter. The id is the position in
    // this list; append-only so old corpus map hashes stay comparable.
    const hive::RpcCallStats& stats = cell.rpc().stats();
    const uint64_t counters[] = {
        stats.calls,
        stats.timeouts,
        stats.queued_calls,
        stats.retries,
        stats.duplicates_suppressed,
        stats.corrupt_lost,
        stats.quarantines_entered,
        stats.quarantine_fail_fast,
        stats.at_most_once_violations,
        stats.acked_mutations,
        stats.executed_mutations,
    };
    for (uint64_t id = 0; id < sizeof(counters) / sizeof(counters[0]); ++id) {
      if (counters[id] > 0) {
        features.insert(Feature(kDomRpcCounter, id, Log2Bucket(counters[id])));
      }
    }

    // Per-cell near-miss margin: remote-traversal hop high-water mark.
    features.insert(Feature(kDomMargin, kMarginTraversalHops,
                            Log2Bucket(static_cast<uint64_t>(
                                cell.detector().max_traversal_hops()))));

    // Final cell state (alive / in-recovery / confirmed-failed bits).
    uint64_t state = cell.alive() ? 1u : 0u;
    state |= cell.in_recovery() ? 2u : 0u;
    state |= sys.CellConfirmedFailed(c) ? 4u : 0u;
    features.insert(Feature(kDomCellState, state, 0));
    excised += sys.CellConfirmedFailed(c) ? 1 : 0;
    dead += cell.alive() ? 0 : 1;
  }

  // System-wide near-miss margins.
  features.insert(Feature(kDomMargin, kMarginVoteTimeouts,
                          Log2Bucket(sys.agreement().vote_timeouts())));
  features.insert(
      Feature(kDomMargin, kMarginRoundCostMs,
              Log2Bucket(static_cast<uint64_t>(sys.agreement().max_round_cost_ns() /
                                               hive::kMillisecond))));
  features.insert(Feature(kDomMargin, kMarginRecoveries,
                          Log2Bucket(static_cast<uint64_t>(
                              sys.recovery().recoveries_run()))));
  features.insert(Feature(kDomMargin, kMarginExcisions, excised));
  features.insert(Feature(kDomMargin, kMarginDeadCells, dead));

  // Which oracles tripped (names, not details: the detail strings embed cell
  // ids and counts that would explode the feature space).
  for (const OracleViolation& violation : violations) {
    features.insert(
        Feature(kDomOracle, FnvMixString(kFnvOffsetBasis, violation.oracle), 0));
  }

  return std::vector<uint64_t>(features.begin(), features.end());
}

uint64_t ComputeTraceSignature(HiveSystem& sys) {
  uint64_t hash = kFnvOffsetBasis;
  for (CellId c = 0; c < sys.num_cells(); ++c) {
    hash = FnvMix(hash, 0x6B63656C6Cull);  // Per-cell separator.
    for (const TraceRecord& record : sys.cell(c).trace().Snapshot()) {
      hash = FnvMix(hash, static_cast<uint64_t>(record.event));
    }
  }
  return hash;
}

size_t CoverageMap::Merge(const std::vector<uint64_t>& features) {
  size_t added = 0;
  for (uint64_t feature : features) {
    added += features_.insert(feature).second ? 1 : 0;
  }
  return added;
}

uint64_t CoverageMap::Hash() const {
  uint64_t hash = kFnvOffsetBasis;
  for (uint64_t feature : features_) {
    hash = FnvMix(hash, feature);
  }
  return hash;
}

}  // namespace campaign
