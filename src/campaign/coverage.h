// Coverage signals for the coverage-guided fault campaign.
//
// A scenario's coverage is a set of 64-bit feature ids derived from the final
// simulator state: trace-event bigrams, log2-bucketed failure-detector hint
// tables, log2-bucketed RPC transport counters, and oracle near-miss margins
// (traversal-hop high-water marks, agreement round cost, vote timeouts,
// excision and recovery counts). Features are deliberately cell-agnostic --
// the same misbehaviour on cell 0 and cell 2 maps to the same feature -- so
// the corpus collects distinct *behaviours*, not distinct cell layouts.
//
// Feature ids are pure functions of simulator state (no wall clock, no
// allocation-order dependence), so coverage is exactly as deterministic as
// the scenario itself, and a coverage map merged in execution order is
// independent of worker count.

#ifndef HIVE_SRC_CAMPAIGN_COVERAGE_H_
#define HIVE_SRC_CAMPAIGN_COVERAGE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/campaign/oracles.h"

namespace hive {
class HiveSystem;
}

namespace campaign {

// FNV-1a mixing, shared by the coverage map digest, trace signatures and the
// campaign's merged-fingerprint accumulator. (The per-scenario fingerprint in
// runner.cc keeps its own private copy: its byte order is pinned by golden
// tests and must not drift with this header.)
inline constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;

uint64_t FnvMix(uint64_t hash, uint64_t value);
uint64_t FnvMixString(uint64_t hash, const std::string& text);

// Extracts the coverage feature set from a finished scenario's simulator
// state plus the oracle verdicts. Returns a sorted, deduplicated vector.
std::vector<uint64_t> ExtractCoverage(hive::HiveSystem& sys,
                                      const std::vector<OracleViolation>& violations);

// Order-sensitive digest of every cell's retained trace-event kind sequence,
// in cell order (event kinds only -- no timestamps, so two runs that took the
// same path through the kernel bucket together even when their clocks
// differ). Triage buckets failures by this signature alongside the tripped
// oracle and the minimized repro.
uint64_t ComputeTraceSignature(hive::HiveSystem& sys);

// Monotone merged coverage map. The campaign driver merges per-scenario
// features in deterministic execution order, so size() and Hash() are
// worker-count independent.
class CoverageMap {
 public:
  // Merges `features` into the map; returns how many were new.
  size_t Merge(const std::vector<uint64_t>& features);

  size_t size() const { return features_.size(); }

  // FNV-1a digest over the sorted feature set.
  uint64_t Hash() const;

 private:
  std::set<uint64_t> features_;
};

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_COVERAGE_H_
