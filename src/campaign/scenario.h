// Scenario model for the fault-campaign engine.
//
// A campaign is driven by one master seed. Scenario k's seed is derived
// deterministically (SplitMix64 over the master seed and the index), and
// everything in the scenario -- cell geometry, workload mix, fault plan,
// injection times -- is generated from that seed alone. Any scenario is
// therefore reproducible from the pair (master_seed, index), which is what
// the repro line `hive_campaign --seed=N --scenario=K` encodes.

#ifndef HIVE_SRC_CAMPAIGN_SCENARIO_H_
#define HIVE_SRC_CAMPAIGN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/agreement.h"
#include "src/core/types.h"
#include "src/flash/fault_injector.h"

namespace campaign {

using hive::CellId;
using hive::Time;

enum class WorkloadKind {
  kNone,      // Boot + faults only (produced by the minimizer, never generated).
  kPmake,     // Multiprogrammed compile jobs (metadata + file traffic).
  kRaytrace,  // COW-tree sharing across cells.
  kOcean,     // Write-shared spanning task group.
  kMixed,     // Pmake and raytrace concurrently.
};

const char* WorkloadKindName(WorkloadKind kind);

enum class FaultKind {
  // Fail-stop hardware failure of the victim's node at inject_at.
  kNodeFailure,
  // Corrupt the `next` pointer of an address-map entry of some process on the
  // victim cell (retried until a process with a populated map exists).
  kAddrMapCorruption,
  // The victim cell attempts a store into another cell's memory through the
  // checked path. With the firewall on, the store is denied and the victim
  // panics (containment holds); with checking disabled (the wild-write
  // fixture) the store lands and the oracles must catch the damage.
  kWildWrite,
  // The victim (here: accuser) raises a hint against a healthy cell; voting
  // or the oracle must refuse to kill the accused.
  kFalseAccusation,
  // A time-windowed message-fault plan on the SIPS substrate (drop /
  // duplicate / delay / corrupt rates in per-mille, see
  // flash::MessageFaultPlan). No cell may die from message faults alone:
  // the reliable RPC transport must ride them out.
  kMessageFaults,
  // The victim cell stays alive but turns Byzantine along the axes in
  // `rogue_axes` (clock misbehaviour, kernel-heap corruption of its published
  // probe structures, RPC babbling/garbage/silence, contrarian votes or
  // repeated false accusations). The survivors must detect and excise the
  // rogue within the detection bound without hanging and without excising any
  // healthy cell.
  kRogueCell,
  // Seed-driven repeated kill/rejoin cycles of rotating victims under load
  // (`storm_cycles` kills inside [inject_at, inject_at + duration)), with
  // live rejoin and page salvage enabled. Some cycles re-kill a cell while a
  // *prior* victim's reintegration is still in flight. The salvage,
  // reintegration-convergence and containment oracles judge the aftermath.
  kRebootStorm,
};

const char* FaultKindName(FaultKind kind);
// Inverse of FaultKindName; returns false for unknown names.
bool FaultKindFromName(std::string_view name, FaultKind* out);

// Every FaultKind, for exhaustive round-trip tests and sweeps.
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kNodeFailure,     FaultKind::kAddrMapCorruption,
    FaultKind::kWildWrite,       FaultKind::kFalseAccusation,
    FaultKind::kMessageFaults,   FaultKind::kRogueCell,
    FaultKind::kRebootStorm,
};

// Orthogonal misbehaviour axes for FaultKind::kRogueCell, combined as a
// bitmask in FaultSpec::rogue_axes. Axes come from four categories (clock,
// heap, rpc, agreement); the generator picks one primary axis and at most one
// secondary axis from a different category.
enum RogueAxis : uint32_t {
  kRogueClockFreeze = 1u << 0,     // Clock word stops advancing.
  kRogueClockDrift = 1u << 1,      // Clock advances at half rate.
  kRogueHeapScribble = 1u << 2,    // Type tag of a published node scribbled.
  kRogueHeapBadPtr = 1u << 3,      // Chain next pointer sent out of range.
  kRogueHeapCycle = 1u << 4,       // Chain next pointer bent back to the head.
  kRogueHeapTorn = 1u << 5,        // Seqlock block torn mid-update (odd seq).
  kRogueRpcBabble = 1u << 6,       // Floods peers with requests.
  kRogueRpcGarbage = 1u << 7,      // Replies carry garbage payload words.
  kRogueRpcSilence = 1u << 8,      // Drops every incoming request, even pings.
  kRogueVoteContrarian = 1u << 9,  // Votes the opposite of its observation.
  kRogueVoteAccuse = 1u << 10,     // Repeatedly accuses a healthy cell.
};

// "clock-freeze+rpc-babble" style rendering of an axis mask.
std::string RogueAxesToString(uint32_t axes);

struct FaultSpec {
  FaultKind kind = FaultKind::kNodeFailure;
  CellId victim = 0;  // For kFalseAccusation: the accuser.
  CellId target = 0;  // kWildWrite: scribble target; kFalseAccusation: accused.
  Time inject_at = 0;
  flash::PointerCorruptionMode mode = flash::PointerCorruptionMode::kOffByOneWord;

  // kMessageFaults only. victim/target name the source/destination cells of
  // the faulty route, or -1 for all routes. Rates are per-mille per hop; the
  // plan window is [inject_at, inject_at + duration).
  uint32_t drop_pm = 0;
  uint32_t dup_pm = 0;
  uint32_t delay_pm = 0;
  uint32_t corrupt_pm = 0;
  Time duration = 0;

  // kRogueCell only: bitmask of RogueAxis values. For kRogueVoteAccuse,
  // `target` names the healthy cell the rogue keeps accusing.
  uint32_t rogue_axes = 0;

  // kRebootStorm only: number of kill/rejoin cycles. `victim` is the first
  // victim (cycles rotate from there); `duration` bounds the storm window.
  uint32_t storm_cycles = 0;

  std::string ToString() const;
};

struct ScenarioSpec {
  uint64_t master_seed = 0;
  uint64_t index = 0;
  uint64_t seed = 0;  // DeriveScenarioSeed(master_seed, index).

  int num_cells = 4;  // One node per cell.
  WorkloadKind workload = WorkloadKind::kPmake;
  int workload_scale = 1;  // Multiplies job counts / compute.
  hive::AgreementMode agreement_mode = hive::AgreementMode::kOracle;
  bool auto_reintegrate = false;
  // Wild-write fixture mode: firewall checking is disabled so an injected
  // wild write actually lands. Used to prove the oracles catch violations.
  bool disable_firewall = false;
  // No-dedup fixture mode: RPC duplicate suppression is disabled on every
  // cell, so substrate duplicates re-execute non-idempotent handlers and the
  // at-most-once oracle must flag the scenario.
  bool disable_rpc_dedup = false;
  // Generated by the message-fault-only sweep (--faults=message): the fault
  // plan contains only kMessageFaults entries.
  bool message_faults_only = false;
  // Generated by the rogue-cell sweep (--faults=rogue): exactly one
  // kRogueCell fault, four cells, real voting, no reintegration.
  bool rogue_only = false;
  // Healthy baseline (--faults=none): rogue-sweep geometry with an empty
  // fault plan; the no-false-excision oracle must see zero excisions.
  bool healthy_baseline = false;
  // No-hop-bound fixture: survivors chase remote chains with the hop bound
  // effectively removed and cycle detection off, so a cyclic rogue chain
  // must trip the no-survivor-hang oracle.
  bool disable_hop_bound = false;
  // Seeded-bug discovery mode (--bug=no_dedup): duplicate suppression is
  // silently broken on one cell (kBugNoDedupCell) while fault plans come from
  // the *default* distribution with duplication thinned to trace levels.
  // Unlike --fixture=no_dedup -- which forces a duplication-heavy plan so
  // every scenario trips -- only the rare scenario whose plan lands a
  // duplicate on non-idempotent traffic served by the buggy cell exposes the
  // bug. This is the discovery problem the guided-vs-random CI check
  // measures: the guided mode must find it in fewer scenarios.
  bool bug_no_dedup = false;
  // Page salvage during recovery (HiveOptions::salvage_pages). On for the
  // salvage sweep (--salvage), the reboot-storm family and the
  // salvage_unchecked bug mode; off elsewhere so the pre-salvage fault
  // families keep their byte-identical fingerprints.
  bool salvage = false;
  // Generated by the reboot-storm sweep (--faults=reboot-storm): exactly one
  // kRebootStorm fault, four cells, live rejoin + salvage enabled.
  bool reboot_storm_only = false;
  // Seeded-bug sensitivity mode (--bug=salvage_unchecked): salvage adopts
  // pages without re-verifying their content checksum
  // (HiveOptions::salvage_verify = false). The plan write-exports a canary
  // page to the victim, lands a wild write on it (firewall checking off) and
  // then kills the victim, so blind adoption keeps corrupt canary bytes and
  // the no-corrupt-adoption oracle must trip.
  bool bug_salvage_unchecked = false;

  // Mutation lineage: this scenario was derived from
  // GenerateScenario(master_seed, index) by applying MutateScenario once per
  // entry, in order. ReproLine() encodes the chain (--mutate=...), so replay
  // is self-contained -- no corpus directory needed.
  std::vector<uint64_t> mutation_chain;

  std::vector<FaultSpec> faults;  // Sorted by inject_at.

  // Simulated settle time after the last injection (detection + recovery +
  // post-checks all complete well within this window).
  Time settle_ns = 800 * hive::kMillisecond;

  // Number of victims of fail-stop node failures (distinct cells).
  int NodeFailureCount() const;
  bool IsNodeFailureVictim(CellId cell) const;

  std::string ToString() const;
  // Self-contained repro line for this scenario.
  std::string ReproLine() const;
};

// Deterministic per-scenario seed derivation (SplitMix64 avalanche of the
// master seed and index). Stable across platforms and releases: repro lines
// in old CI logs must keep meaning the same scenario.
uint64_t DeriveScenarioSeed(uint64_t master_seed, uint64_t index);

struct GeneratorOptions {
  // Generate exactly one wild write with firewall checking disabled, so the
  // write lands and the containment oracles must flag the scenario.
  bool wild_write_fixture = false;
  // Generate one heavy-duplication message-fault plan with RPC duplicate
  // suppression disabled, so non-idempotent handlers re-execute and the
  // at-most-once oracle must flag the scenario.
  bool no_dedup_fixture = false;
  // Restrict the fault plan to kMessageFaults (the CI message-fault sweep:
  // loss + duplication + reordering + corruption with the transport intact).
  bool message_faults_only = false;
  // Restrict the fault plan to exactly one kRogueCell fault (the CI rogue
  // sweep: a live Byzantine cell the survivors must detect and excise).
  bool rogue_only = false;
  // Rogue-sweep geometry with zero faults: the sensitivity baseline proving
  // the hardened detectors never excise a healthy cell.
  bool healthy_baseline = false;
  // Rogue fixture: force a cyclic-chain rogue and disable the survivors' hop
  // bound, so the no-survivor-hang oracle must flag the scenario.
  bool no_hop_bound_fixture = false;
  // Seeded-bug discovery mode: see ScenarioSpec::bug_no_dedup.
  bool bug_no_dedup = false;
  // Default-distribution plans with page salvage enabled (the CI salvage
  // sweep: firewall-contained wild writes and node failures whose recoveries
  // must salvage provably-clean pages instead of discarding them).
  bool salvage = false;
  // Restrict the fault plan to exactly one kRebootStorm fault (the CI
  // reboot-storm sweep: rotating kill/rejoin cycles under load).
  bool reboot_storm_only = false;
  // Seeded-bug sensitivity mode: see ScenarioSpec::bug_salvage_unchecked.
  bool bug_salvage_unchecked = false;
};

// Generates scenario `index` of the campaign rooted at `master_seed`.
ScenarioSpec GenerateScenario(uint64_t master_seed, uint64_t index,
                              const GeneratorOptions& options = {});

// The cell whose duplicate suppression is broken in bug_no_dedup mode. Cell 1
// exists in both 2- and 4-cell geometries, and is never the file-root home,
// so the bug's only symptom is the at-most-once counter.
inline constexpr CellId kBugNoDedupCell = 1;

// Coverage-guided mutation: derives a new scenario from `base` by applying
// one structure-preserving operator chosen from `mutation_seed` -- injection
// time jitter, victim/target retargeting, fault duplication or removal,
// workload kind/scale changes, message-rate redraws, corruption-mode changes,
// or a 2<->4 cell geometry flip. The mutant keeps the base's mode flags and
// appends `mutation_seed` to its mutation_chain; its scenario seed is derived
// from the base seed and the mutation seed, so the mutant is fully determined
// by (master_seed, index, mutation_chain).
//
// Mutants preserve the generator's plan invariants (distinct node-failure
// victims capped at num_cells/2, at most one false accusation, message faults
// and accusations never mixed, targets distinct from victims) so a mutant can
// only trip an oracle by finding a real bug, never by violating a documented
// scenario precondition.
ScenarioSpec MutateScenario(const ScenarioSpec& base, uint64_t mutation_seed);

// Replays a mutation chain against a freshly generated root scenario.
ScenarioSpec ApplyMutationChain(const ScenarioSpec& root,
                                const std::vector<uint64_t>& chain);

// "12,7,3099" rendering of a mutation chain (decimal, comma-separated) and
// its inverse. Used by repro lines and the corpus on-disk format.
std::string FormatMutationChain(const std::vector<uint64_t>& chain);
bool ParseMutationChain(std::string_view text, std::vector<uint64_t>* out);

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_SCENARIO_H_
