// Scenario model for the fault-campaign engine.
//
// A campaign is driven by one master seed. Scenario k's seed is derived
// deterministically (SplitMix64 over the master seed and the index), and
// everything in the scenario -- cell geometry, workload mix, fault plan,
// injection times -- is generated from that seed alone. Any scenario is
// therefore reproducible from the pair (master_seed, index), which is what
// the repro line `hive_campaign --seed=N --scenario=K` encodes.

#ifndef HIVE_SRC_CAMPAIGN_SCENARIO_H_
#define HIVE_SRC_CAMPAIGN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/agreement.h"
#include "src/core/types.h"
#include "src/flash/fault_injector.h"

namespace campaign {

using hive::CellId;
using hive::Time;

enum class WorkloadKind {
  kNone,      // Boot + faults only (produced by the minimizer, never generated).
  kPmake,     // Multiprogrammed compile jobs (metadata + file traffic).
  kRaytrace,  // COW-tree sharing across cells.
  kOcean,     // Write-shared spanning task group.
  kMixed,     // Pmake and raytrace concurrently.
};

const char* WorkloadKindName(WorkloadKind kind);

enum class FaultKind {
  // Fail-stop hardware failure of the victim's node at inject_at.
  kNodeFailure,
  // Corrupt the `next` pointer of an address-map entry of some process on the
  // victim cell (retried until a process with a populated map exists).
  kAddrMapCorruption,
  // The victim cell attempts a store into another cell's memory through the
  // checked path. With the firewall on, the store is denied and the victim
  // panics (containment holds); with checking disabled (the wild-write
  // fixture) the store lands and the oracles must catch the damage.
  kWildWrite,
  // The victim (here: accuser) raises a hint against a healthy cell; voting
  // or the oracle must refuse to kill the accused.
  kFalseAccusation,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kNodeFailure;
  CellId victim = 0;  // For kFalseAccusation: the accuser.
  CellId target = 0;  // kWildWrite: scribble target; kFalseAccusation: accused.
  Time inject_at = 0;
  flash::PointerCorruptionMode mode = flash::PointerCorruptionMode::kOffByOneWord;

  std::string ToString() const;
};

struct ScenarioSpec {
  uint64_t master_seed = 0;
  uint64_t index = 0;
  uint64_t seed = 0;  // DeriveScenarioSeed(master_seed, index).

  int num_cells = 4;  // One node per cell.
  WorkloadKind workload = WorkloadKind::kPmake;
  int workload_scale = 1;  // Multiplies job counts / compute.
  hive::AgreementMode agreement_mode = hive::AgreementMode::kOracle;
  bool auto_reintegrate = false;
  // Wild-write fixture mode: firewall checking is disabled so an injected
  // wild write actually lands. Used to prove the oracles catch violations.
  bool disable_firewall = false;

  std::vector<FaultSpec> faults;  // Sorted by inject_at.

  // Simulated settle time after the last injection (detection + recovery +
  // post-checks all complete well within this window).
  Time settle_ns = 800 * hive::kMillisecond;

  // Number of victims of fail-stop node failures (distinct cells).
  int NodeFailureCount() const;
  bool IsNodeFailureVictim(CellId cell) const;

  std::string ToString() const;
  // Self-contained repro line for this scenario.
  std::string ReproLine() const;
};

// Deterministic per-scenario seed derivation (SplitMix64 avalanche of the
// master seed and index). Stable across platforms and releases: repro lines
// in old CI logs must keep meaning the same scenario.
uint64_t DeriveScenarioSeed(uint64_t master_seed, uint64_t index);

struct GeneratorOptions {
  // Generate exactly one wild write with firewall checking disabled, so the
  // write lands and the containment oracles must flag the scenario.
  bool wild_write_fixture = false;
};

// Generates scenario `index` of the campaign rooted at `master_seed`.
ScenarioSpec GenerateScenario(uint64_t master_seed, uint64_t index,
                              const GeneratorOptions& options = {});

}  // namespace campaign

#endif  // HIVE_SRC_CAMPAIGN_SCENARIO_H_
