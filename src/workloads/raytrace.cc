#include "src/workloads/raytrace.h"

#include "src/base/log.h"
#include "src/core/filesystem.h"

namespace workloads {
namespace {

constexpr hive::VirtAddr kSceneVa = 0x50000000;

}  // namespace

RaytraceWorkload::RaytraceWorkload(hive::HiveSystem* system, const RaytraceParams& params)
    : system_(system),
      params_(params),
      worker_pids_(std::make_shared<std::vector<hive::ProcId>>()) {}

std::unique_ptr<hive::Behavior> RaytraceWorkload::MakeWorker(int worker, hive::CellId cell) {
  auto behavior =
      std::make_unique<ScriptedBehavior>("raytrace-worker-" + std::to_string(worker));
  const uint64_t page_size = system_->machine().mem().page_size();
  auto out_fd = std::make_shared<int>(-1);
  const std::string out_path = "/out/ray-" + std::to_string(params_.name_seed) + "-tile" +
                               std::to_string(worker);

  // Each block read-faults the slice of the scene it needs before tracing:
  // COW lookups walk to the parent's (possibly remote) tree node with the
  // careful reference protocol, then bind. Spreading the faults over the run
  // models demand paging (and gives COW-corruption faults a window to be
  // discovered, table 7.4's long raytrace detection latencies).
  const uint64_t page_size2 = page_size;
  const uint64_t slice = std::max<uint64_t>(
      1, params_.scene_pages / static_cast<uint64_t>(params_.blocks_per_worker));
  for (int block = 0; block < params_.blocks_per_worker; ++block) {
    const uint64_t first = std::min(params_.scene_pages, static_cast<uint64_t>(block) * slice);
    const uint64_t count = block + 1 == params_.blocks_per_worker
                               ? params_.scene_pages - first
                               : std::min(slice, params_.scene_pages - first);
    if (count > 0) {
      behavior->Add(OpFaultRange(kSceneVa + first * page_size2, count, /*write=*/false));
    }
    behavior->AddLocal(OpCompute(params_.compute_per_block));
    // Re-read already-mapped scene pages while tracing (user-mode reads).
    behavior->Add(OpTouchMapped(kSceneVa + first * page_size2, std::max<uint64_t>(count / 2, 1),
                                /*write=*/false, /*misses_per_page=*/1));
  }

  // Write the result tile to a file on the worker's own cell.
  behavior->Add([out_path, this, cell](Ctx& ctx, Process& proc) -> StepOutcome {
    (void)proc;
    (void)cell;
    auto id = ctx.cell->fs().Create(
        ctx, out_path,
        PatternData(params_.name_seed * 5000 + static_cast<uint64_t>(
                                                   ctx.cell->id() * 100),
                    0));
    return id.ok() ? StepOutcome::kContinue : StepOutcome::kFailed;
  });
  behavior->Add(OpOpen(out_path, out_fd));
  behavior->Add(OpWrite(out_fd, 0, params_.result_bytes,
                        params_.name_seed * 4000 + static_cast<uint64_t>(worker)));
  behavior->Add(OpClose(out_fd));
  return behavior;
}

std::vector<hive::ProcId> RaytraceWorkload::Start() {
  const std::vector<hive::CellId> live = system_->LiveCells();
  CHECK(!live.empty());
  task_group_ = system_->NextTaskGroup();
  const uint64_t page_size = system_->machine().mem().page_size();

  auto parent = std::make_unique<ScriptedBehavior>("raytrace-parent");
  // Build the scene in anonymous memory (write faults populate the parent's
  // COW leaf).
  parent->Add(OpMapAnon(kSceneVa, params_.scene_pages * page_size, /*writable=*/true));
  parent->Add(OpFaultRange(kSceneVa, params_.scene_pages, /*write=*/true));
  parent->AddLocal(OpCompute(200 * hive::kMillisecond));  // Scene preprocessing.

  // Fork one worker per CPU, spread across cells; fork_from_self gives the
  // workers COW access to the scene.
  int worker = 0;
  for (hive::CellId id : live) {
    const size_t cpus = system_->cell(id).cpus().size();
    for (size_t c = 0; c < cpus; ++c) {
      parent->Add(OpFork(id, [this, worker, id] { return MakeWorker(worker, id); },
                         worker_pids_, task_group_, /*fork_from_self=*/true));
      worker_cells_.push_back(id);
      ++worker;
    }
  }
  parent->Add(OpWaitAll(worker_pids_));

  hive::Ctx ctx = system_->cell(live.front()).MakeCtx();
  auto pid = system_->Fork(ctx, params_.parent_cell, std::move(parent), task_group_);
  CHECK(pid.ok());
  parent_pid_ = *pid;
  return {parent_pid_};
}

int RaytraceWorkload::ValidateOutputs() {
  int corrupt = 0;
  for (size_t w = 0; w < worker_pids_->size(); ++w) {
    const hive::CellId cell_id = worker_cells_[w];
    if (!system_->cell(cell_id).alive()) {
      continue;
    }
    hive::Process* proc = system_->cell(cell_id).sched().FindProcess((*worker_pids_)[w]);
    if (proc == nullptr || proc->state() != hive::ProcState::kExited) {
      continue;
    }
    const std::string out_path = "/out/ray-" + std::to_string(params_.name_seed) + "-tile" +
                                 std::to_string(w);
    auto file_id = system_->LookupPath(out_path);
    if (!file_id.ok()) {
      ++corrupt;
      continue;
    }
    const hive::Vnode* vnode =
        system_->cell(file_id->data_home).fs().FindVnode(file_id->vnode);
    if (vnode == nullptr || vnode->disk_image.size() < params_.result_bytes) {
      ++corrupt;
      continue;
    }
    std::vector<uint8_t> disk(vnode->disk_image.begin(),
                              vnode->disk_image.begin() +
                                  static_cast<int64_t>(params_.result_bytes));
    if (Checksum(disk) !=
        PatternChecksum(params_.name_seed * 4000 + w, params_.result_bytes)) {
      ++corrupt;
    }
  }
  return corrupt;
}

}  // namespace workloads
