#include "src/workloads/serve_requests.h"

#include <algorithm>

namespace workloads {
namespace {

constexpr uint64_t kChunk = 4096;          // One page of file I/O per access.
constexpr hive::VirtAddr kAnonBase = 0x40000000;  // Private per-process space.

// SplitMix64 finalizer: decorrelates the per-request offsets drawn from one
// tenant's consecutive request seeds.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// A chunk-aligned offset with at least one chunk of headroom.
uint64_t ChunkOffset(uint64_t seed, uint64_t file_size) {
  const uint64_t chunks = std::max<uint64_t>(file_size / kChunk, 1) - 0;
  return (Mix(seed) % chunks) * kChunk;
}

}  // namespace

std::unique_ptr<ScriptedBehavior> MakeTenantSetup(const ServeRequestParams& params) {
  auto behavior = std::make_unique<ScriptedBehavior>("tenant-setup");
  behavior->Add(OpCreate(params.data_path, params.file_seed, params.file_size));
  return behavior;
}

std::unique_ptr<ScriptedBehavior> MakeReadRequest(const ServeRequestParams& params) {
  auto behavior = std::make_unique<ScriptedBehavior>("serve-read");
  auto fd = std::make_shared<int>(-1);
  behavior->Add(OpOpen(params.data_path, fd));
  behavior->Add(OpRead(fd, ChunkOffset(params.request_seed, params.file_size), kChunk,
                       params.file_seed));
  behavior->Add(OpRead(fd, ChunkOffset(params.request_seed + 1, params.file_size), kChunk,
                       params.file_seed));
  behavior->Add(OpClose(fd));
  behavior->Add(OpCompute(100 * hive::kMicrosecond, 100 * hive::kMicrosecond));
  return behavior;
}

std::unique_ptr<ScriptedBehavior> MakeWriteRequest(const ServeRequestParams& params) {
  auto behavior = std::make_unique<ScriptedBehavior>("serve-write");
  auto fd = std::make_shared<int>(-1);
  behavior->Add(OpOpen(params.data_path, fd));
  // Writes re-write the tenant's own pattern stream at the drawn offset, so
  // the file always verifies against PatternData(file_seed): a recovery that
  // drops the dirty page reverts bytes to identical on-disk content, and
  // concurrent readers of any offset still validate. The write path (dirty
  // pages, pageout, generation bumps) is exercised all the same.
  behavior->Add(OpWrite(fd, ChunkOffset(params.request_seed + 2, params.file_size), kChunk,
                        params.file_seed));
  behavior->Add(OpClose(fd));
  behavior->Add(OpCompute(50 * hive::kMicrosecond, 50 * hive::kMicrosecond));
  return behavior;
}

std::unique_ptr<ScriptedBehavior> MakeFaultRequest(const ServeRequestParams& params) {
  auto behavior = std::make_unique<ScriptedBehavior>("serve-fault");
  const uint64_t pages = 8 + (Mix(params.request_seed) % 8);  // 8..15 pages.
  const uint64_t page_size = 4096;
  // Two disjoint regions so the process's address map has at least two
  // entries -- the structure the addr-map-corruption fault family targets.
  behavior->Add(OpMapAnon(kAnonBase, pages * page_size, /*writable=*/true));
  behavior->Add(OpMapAnon(kAnonBase + (1 << 20), 2 * page_size, /*writable=*/true));
  behavior->Add(OpFaultRange(kAnonBase + (1 << 20), 2, /*write=*/true));
  behavior->Add(OpFaultRange(kAnonBase, pages, /*write=*/true));
  behavior->Add(OpTouchMapped(kAnonBase, pages, /*write=*/true, /*misses_per_page=*/4));
  behavior->Add(OpCompute(50 * hive::kMicrosecond, 50 * hive::kMicrosecond));
  return behavior;
}

std::unique_ptr<ScriptedBehavior> MakeMetadataRequest(const ServeRequestParams& params) {
  auto behavior = std::make_unique<ScriptedBehavior>("serve-metadata");
  behavior->Add(OpMetadataOps(24, params.home));
  behavior->Add(OpCompute(50 * hive::kMicrosecond, 50 * hive::kMicrosecond));
  return behavior;
}

std::unique_ptr<ScriptedBehavior> MakeForkBurstRequest(const ServeRequestParams& params,
                                                       int children) {
  auto behavior = std::make_unique<ScriptedBehavior>("serve-forkburst");
  auto pids = std::make_shared<std::vector<hive::ProcId>>();
  for (int i = 0; i < children; ++i) {
    // Children are pure local compute; the churn under test is the fork and
    // exit traffic itself, not the children's work.
    behavior->Add(OpFork(hive::kInvalidCell,
                         [] {
                           auto child = std::make_unique<ScriptedBehavior>("burst-child");
                           child->Add(OpCompute(200 * hive::kMicrosecond,
                                                200 * hive::kMicrosecond));
                           return child;
                         },
                         pids));
  }
  behavior->Add(OpWaitAll(pids));
  (void)params;
  return behavior;
}

}  // namespace workloads
