// Request behaviours for the hive_serve soak harness: short scripted
// processes modelling one served request each (file read, file write, page
// fault burst, metadata walk, fork fan-out). The harness forks thousands of
// these across cells as tenants submit; each finishes in simulated
// milliseconds so submit-to-completion latency is a meaningful SLO.
//
// The builders return plain ScriptedBehaviors; the serve pump appends its own
// completion op (recording latency into the SLO histograms) before forking.

#ifndef HIVE_SRC_WORKLOADS_SERVE_REQUESTS_H_
#define HIVE_SRC_WORKLOADS_SERVE_REQUESTS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/workloads/workload.h"

namespace workloads {

// Parameters shared by the request builders for one tenant.
struct ServeRequestParams {
  std::string data_path;     // Tenant data file (created by MakeTenantSetup).
  uint64_t file_seed = 0;    // Pattern seed of the data file.
  uint64_t file_size = 0;    // Bytes in the data file.
  uint64_t request_seed = 0; // Per-request determinism (offsets, garbage).
  hive::CellId home = 0;     // Cell metadata traffic is homed on.
};

// Creates the tenant's data file (run once per tenant before serving).
std::unique_ptr<ScriptedBehavior> MakeTenantSetup(const ServeRequestParams& params);

// Read request: open, read-verify two chunks at seeded offsets, close, then
// a short compute epilogue.
std::unique_ptr<ScriptedBehavior> MakeReadRequest(const ServeRequestParams& params);

// Write request: open, write a chunk at a tenant-private scratch offset
// (beyond the verified pattern prefix), close.
std::unique_ptr<ScriptedBehavior> MakeWriteRequest(const ServeRequestParams& params);

// Page-fault request: map an anonymous region, write-fault it, touch it.
std::unique_ptr<ScriptedBehavior> MakeFaultRequest(const ServeRequestParams& params);

// Metadata request: a burst of stat/lookup style kernel ops against the
// tenant's home cell (remote when served from a failover cell).
std::unique_ptr<ScriptedBehavior> MakeMetadataRequest(const ServeRequestParams& params);

// Fork-burst request: the served process forks `children` local compute
// children in one task group and waits for all of them (fork-storm churn).
std::unique_ptr<ScriptedBehavior> MakeForkBurstRequest(const ServeRequestParams& params,
                                                       int children);

}  // namespace workloads

#endif  // HIVE_SRC_WORKLOADS_SERVE_REQUESTS_H_
