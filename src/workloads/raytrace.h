// raytrace: the paper's rendering workload (teapot, 6 antialias rays per
// pixel, table 7.1). A parent process builds the scene in anonymous memory
// and forks one worker per processor; workers read-share the scene through
// the copy-on-write tree -- whose interior nodes may be on other cells, so
// lookups exercise the careful reference protocol (section 5.3) and remote
// COW binds. Workers render independent pixel blocks (pure user compute)
// and write their result tiles to local files.

#ifndef HIVE_SRC_WORKLOADS_RAYTRACE_H_
#define HIVE_SRC_WORKLOADS_RAYTRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace workloads {

struct RaytraceParams {
  hive::CellId parent_cell = 0;
  uint64_t scene_pages = 256;     // ~1 MB scene, built in anon memory.
  int blocks_per_worker = 16;
  Time compute_per_block = 260 * hive::kMillisecond;
  uint64_t result_bytes = 64 * 1024;  // Tile output per worker.
  uint64_t name_seed = 0x726179;
};

class RaytraceWorkload {
 public:
  RaytraceWorkload(hive::HiveSystem* system, const RaytraceParams& params);

  // Forks the parent process; the parent builds the scene, forks workers on
  // every cell (COW leaf splits across cells), waits for them, and exits.
  std::vector<hive::ProcId> Start();

  // The parent's pid (workers are tracked through worker_pids()).
  hive::ProcId parent_pid() const { return parent_pid_; }
  const std::vector<hive::ProcId>& worker_pids() const { return *worker_pids_; }

  // Validates worker result tiles; returns the number of corrupt files.
  int ValidateOutputs();

 private:
  std::unique_ptr<hive::Behavior> MakeWorker(int worker, hive::CellId cell);

  hive::HiveSystem* system_;
  RaytraceParams params_;
  hive::ProcId parent_pid_ = hive::kInvalidProc;
  std::shared_ptr<std::vector<hive::ProcId>> worker_pids_;
  std::vector<hive::CellId> worker_cells_;
  int64_t task_group_ = -1;
};

}  // namespace workloads

#endif  // HIVE_SRC_WORKLOADS_RAYTRACE_H_
