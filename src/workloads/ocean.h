// ocean: the paper's parallel scientific application (SPLASH-2 ocean
// simulation, 130x130 grid, table 7.1). One thread per processor, a
// write-shared data segment spanning the whole grid, and a barrier per
// timestep. Because the data segment is write-shared by all processors, the
// firewall policy leaves it remotely writable everywhere (the average of
// ~550 remotely-writable pages per cell in section 4.2); after the first
// touch almost all execution is user mode, so the multicellular overhead is
// negligible (table 7.2).

#ifndef HIVE_SRC_WORKLOADS_OCEAN_H_
#define HIVE_SRC_WORKLOADS_OCEAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace workloads {

struct OceanParams {
  hive::CellId segment_home = 0;  // Data home of the shared grid segment.
  uint64_t grid_pages = 2930;     // ~12 MB of write-shared grids.
  int timesteps = 60;
  Time compute_per_step = 100 * hive::kMillisecond;  // Per thread per step.
  int touches_per_step = 64;      // Pages each thread writes per step.
  // Stencil halo: boundary pages of the neighbouring partition each thread
  // also writes per step (genuine cross-cell write sharing).
  int halo_pages = 4;
  int remote_touch_misses = 2;    // Cache misses charged per touched page.
  // Ocean's remote write misses are contended (3-hop dirty misses), slower
  // than the 700 ns machine average; this makes the fixed firewall check a
  // smaller fraction (4.4% vs pmake's 6.3%, section 4.2).
  Time contended_miss_ns = 1000;
  uint64_t name_seed = 0x6f6365;
};

class OceanWorkload {
 public:
  OceanWorkload(hive::HiveSystem* system, const OceanParams& params);

  // Creates the shared grid file on the segment home.
  void Setup();

  // Forks one thread per CPU as one task group (a spanning application);
  // returns the pids.
  std::vector<hive::ProcId> Start();

  const std::vector<hive::ProcId>& pids() const { return pids_; }
  int64_t task_group() const { return task_group_; }

 private:
  std::unique_ptr<hive::Behavior> MakeThread(int thread, int num_threads);
  std::string SegmentPath() const;

  hive::HiveSystem* system_;
  OceanParams params_;
  std::vector<hive::ProcId> pids_;
  std::shared_ptr<hive::UserBarrier> step_barriers_unused_;
  int64_t task_group_ = -1;
  std::vector<std::shared_ptr<hive::UserBarrier>> barriers_;
};

}  // namespace workloads

#endif  // HIVE_SRC_WORKLOADS_OCEAN_H_
