// Workload infrastructure: scripted process behaviours built from composable
// operations (compute, file I/O, page faults, barriers, forks), plus
// deterministic data patterns so file outputs can be validated against
// reference copies exactly as the paper's fault injection experiments do
// (section 7.4).

#ifndef HIVE_SRC_WORKLOADS_WORKLOAD_H_
#define HIVE_SRC_WORKLOADS_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/core/process.h"
#include "src/core/vm_fault.h"

namespace workloads {

using hive::Ctx;
using hive::Process;
using hive::StepOutcome;
using hive::Time;

// Deterministic pattern data: byte i of stream `seed` is a fixed function of
// (seed, i), so both producers and validators can generate it independently.
std::vector<uint8_t> PatternData(uint64_t seed, size_t size);
uint64_t Checksum(const std::vector<uint8_t>& data);
uint64_t PatternChecksum(uint64_t seed, size_t size);

// Memoized pattern prefix: returns a per-thread cached buffer holding at
// least `min_size` bytes of stream `seed`. Producers/validators call the
// pattern generator once per I/O chunk with monotonically growing sizes, so
// regenerating from scratch each time is quadratic in file size; the cache
// extends the stream incrementally instead. The reference stays valid until
// the next PatternRef call on the same thread.
const std::vector<uint8_t>& PatternRef(uint64_t seed, size_t min_size);

// One scripted operation. Returning kContinue advances to the next op;
// kBlocked parks the process (resuming at the NEXT op when woken); kFailed
// aborts the process.
using OpFn = std::function<StepOutcome(Ctx&, Process&)>;

class ScriptedBehavior : public hive::Behavior {
 public:
  explicit ScriptedBehavior(std::string name) : name_(std::move(name)) {}

  void Add(OpFn op) {
    ops_.push_back(std::move(op));
    local_.push_back(false);
  }

  // Adds an op declared cell-local pure compute (see Behavior::NextStepLocal
  // for the contract); currently only OpCompute qualifies.
  void AddLocal(OpFn op) {
    ops_.push_back(std::move(op));
    local_.push_back(true);
  }

  StepOutcome Step(Ctx& ctx, Process& proc) override;
  // The last op never claims locality: its completion ends the process,
  // which is a cross-cell operation (exit notification, file close).
  bool NextStepLocal() const override {
    return next_ + 1 < ops_.size() && local_[next_];
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<OpFn> ops_;
  std::vector<bool> local_;
  size_t next_ = 0;
};

// Shared mutable state for ops that span multiple Steps.
struct Counter {
  uint64_t value = 0;
};

// --- Op builders. ---

// Charges `total` of pure user-mode compute, `chunk` per Step.
OpFn OpCompute(Time total, Time chunk = 5 * hive::kMillisecond);

// Opens `path`, storing the fd in *fd_out. Fails the process on error.
OpFn OpOpen(std::string path, std::shared_ptr<int> fd_out);

// Creates a file on the local cell with `size` bytes of PatternData(seed).
OpFn OpCreate(std::string path, uint64_t seed, uint64_t size);

// Reads [offset, offset+len) and (optionally) verifies it matches
// PatternData(seed) at that offset; seed == 0 skips verification.
OpFn OpRead(std::shared_ptr<int> fd, uint64_t offset, uint64_t len, uint64_t verify_seed);

// Writes PatternData(seed) bytes at [offset, offset+len).
OpFn OpWrite(std::shared_ptr<int> fd, uint64_t offset, uint64_t len, uint64_t seed);

OpFn OpClose(std::shared_ptr<int> fd);

// Maps the open file at `va` (writable or not).
OpFn OpMapFile(std::shared_ptr<int> fd, hive::VirtAddr va, uint64_t len, bool writable);

// Maps an anonymous region.
OpFn OpMapAnon(hive::VirtAddr va, uint64_t len, bool writable);

// Faults `pages` pages starting at va (stride = page size), `per_step` pages
// per scheduler step. write selects write faults.
OpFn OpFaultRange(hive::VirtAddr va, uint64_t pages, bool write, uint64_t per_step = 64);

// User-mode access to already-mapped pages: performs one real load/store per
// page (so wild-write protection is exercised) and charges `misses_per_page`
// cache misses of the appropriate class.
// `remote_write_base_ns` models contended (3-hop) remote write misses; 0
// uses the machine's average miss latency.
OpFn OpTouchMapped(hive::VirtAddr va, uint64_t pages, bool write, int misses_per_page,
                   uint64_t per_step = 256, hive::Time remote_write_base_ns = 0);

// Arrives at the barrier (blocks unless last).
OpFn OpBarrier(std::shared_ptr<hive::UserBarrier> barrier);

// Forks a child with the behaviour produced by `factory` onto `target`
// (kInvalidCell: the Wax fork hint or local). Appends the pid to *pids.
using BehaviorFactory = std::function<std::unique_ptr<hive::Behavior>()>;
OpFn OpFork(hive::CellId target, BehaviorFactory factory,
            std::shared_ptr<std::vector<hive::ProcId>> pids, int64_t task_group = -1,
            bool fork_from_self = false);

// Blocks until all pids in *pids have finished.
OpFn OpWaitAll(std::shared_ptr<std::vector<hive::ProcId>> pids);

// Charges a number of "miscellaneous kernel operations" (stat/lookup style):
// local cost per op, plus the remote-open extra when `remote_home` is another
// cell. Models the metadata traffic of compilation workloads.
OpFn OpMetadataOps(int count, hive::CellId remote_home, int per_step = 8);

}  // namespace workloads

#endif  // HIVE_SRC_WORKLOADS_WORKLOAD_H_
