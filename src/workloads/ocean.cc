#include "src/workloads/ocean.h"

#include "src/base/log.h"
#include "src/core/filesystem.h"

namespace workloads {
namespace {

constexpr hive::VirtAddr kGridVa = 0x40000000;

}  // namespace

OceanWorkload::OceanWorkload(hive::HiveSystem* system, const OceanParams& params)
    : system_(system), params_(params) {}

std::string OceanWorkload::SegmentPath() const {
  return "/shm/ocean-" + std::to_string(params_.name_seed);
}

void OceanWorkload::Setup() {
  hive::Cell& home = system_->cell(params_.segment_home);
  hive::Ctx ctx = home.MakeCtx();
  const uint64_t page_size = system_->machine().mem().page_size();
  auto id = home.fs().Create(ctx, SegmentPath(),
                             PatternData(params_.name_seed, params_.grid_pages * page_size));
  CHECK(id.ok()) << "ocean setup failed";
  // Warm the file cache before the run (paper section 7.3).
  for (uint64_t p = 0; p < params_.grid_pages; ++p) {
    auto got = home.fs().GetPageLocal(ctx, id->vnode, p, /*want_write=*/false);
    CHECK(got.ok());
    (*got)->refcount--;
  }
}

std::unique_ptr<hive::Behavior> OceanWorkload::MakeThread(int thread, int num_threads) {
  auto behavior = std::make_unique<ScriptedBehavior>("ocean-thread-" + std::to_string(thread));
  const uint64_t page_size = system_->machine().mem().page_size();
  auto fd = std::make_shared<int>(-1);

  behavior->Add(OpOpen(SegmentPath(), fd));
  behavior->Add(OpMapFile(fd, kGridVa, params_.grid_pages * page_size, /*writable=*/true));

  // Initialization: fault the thread's partition (writable region -> the
  // whole cell gets write access, section 4.2).
  const uint64_t part_pages = params_.grid_pages / static_cast<uint64_t>(num_threads);
  const uint64_t part_start = static_cast<uint64_t>(thread) * part_pages;
  behavior->Add(OpFaultRange(kGridVa + part_start * page_size, part_pages, /*write=*/true));

  for (int step = 0; step < params_.timesteps; ++step) {
    behavior->AddLocal(OpCompute(params_.compute_per_step));
    // Relaxation sweep over the partition plus a halo of neighbour pages.
    const uint64_t touch_start =
        part_start * page_size +
        (static_cast<uint64_t>(step) % 4) * static_cast<uint64_t>(params_.touches_per_step) *
            page_size / 4;
    behavior->Add(OpTouchMapped(kGridVa + touch_start,
                                static_cast<uint64_t>(params_.touches_per_step),
                                /*write=*/true, params_.remote_touch_misses,
                                /*per_step=*/256, params_.contended_miss_ns));
    // Halo exchange: write the first pages of the next partition (stencil
    // boundary), so adjacent threads genuinely write-share those pages.
    if (params_.halo_pages > 0) {
      const uint64_t next_start =
          (static_cast<uint64_t>(thread + 1) % static_cast<uint64_t>(num_threads)) *
          part_pages;
      behavior->Add(OpTouchMapped(kGridVa + next_start * page_size,
                                  static_cast<uint64_t>(params_.halo_pages),
                                  /*write=*/true, params_.remote_touch_misses,
                                  /*per_step=*/256, params_.contended_miss_ns));
    }
    behavior->Add(OpBarrier(barriers_[static_cast<size_t>(step)]));
  }
  behavior->Add(OpClose(fd));
  return behavior;
}

std::vector<hive::ProcId> OceanWorkload::Start() {
  const std::vector<hive::CellId> live = system_->LiveCells();
  CHECK(!live.empty());
  int num_threads = 0;
  for (hive::CellId id : live) {
    num_threads += static_cast<int>(system_->cell(id).cpus().size());
  }
  barriers_.clear();
  for (int step = 0; step < params_.timesteps; ++step) {
    barriers_.push_back(std::make_shared<hive::UserBarrier>(num_threads));
  }

  task_group_ = system_->NextTaskGroup();
  hive::Ctx ctx = system_->cell(live.front()).MakeCtx();
  int thread = 0;
  for (hive::CellId id : live) {
    for (size_t c = 0; c < system_->cell(id).cpus().size(); ++c) {
      auto pid = system_->Fork(ctx, id, MakeThread(thread, num_threads), task_group_);
      CHECK(pid.ok());
      pids_.push_back(*pid);
      ++thread;
    }
  }
  return pids_;
}

}  // namespace workloads
