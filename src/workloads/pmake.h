// pmake: the paper's multiprogrammed compute-server workload (parallel
// compilation of 11 files of GnuChess 3.1, four at a time, table 7.1).
//
// Each compile job is an independent process that:
//   - opens and reads its source file plus a set of headers homed on the
//     /tmp file-server cell (cell 0), generating remote opens and metadata
//     traffic for jobs on other cells;
//   - faults in the shared compiler text and its private working set of
//     mapped file pages (the page-cache faults of paper section 5.2);
//   - computes (the actual compilation);
//   - writes its intermediate output file to /tmp and exits.
//
// Jobs write-share almost nothing, which is why the firewall policy keeps
// the remotely-writable page count tiny under pmake (section 4.2).

#ifndef HIVE_SRC_WORKLOADS_PMAKE_H_
#define HIVE_SRC_WORKLOADS_PMAKE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace workloads {

struct PmakeParams {
  int jobs = 11;
  int parallelism = 4;
  hive::CellId file_server = 0;   // Data home of /tmp and the sources.
  uint64_t source_bytes = 40 * 1024;
  uint64_t output_bytes = 96 * 1024;
  // Mapped working set per job: shared compiler text + private data files.
  uint64_t shared_text_pages = 150;
  uint64_t private_file_pages = 550;
  uint64_t anon_pages = 160;
  int metadata_ops = 100;         // Header opens/stats across cc/cpp/cc1/as.
  // Small write-mapped scratch file per job on /tmp (drives the section 4.2
  // remotely-writable page counts: ~15 average, ~42 peak on the file server).
  uint64_t scratch_pages = 8;
  Time compute_per_job = 2000 * hive::kMillisecond;
  uint64_t name_seed = 0x706d616b;  // Distinguishes concurrent instances.
};

class PmakeWorkload {
 public:
  PmakeWorkload(hive::HiveSystem* system, const PmakeParams& params);

  // Creates the source files, compiler image and /tmp directory contents on
  // the file-server cell, and warms its file cache (the paper warms caches
  // before every measurement, section 7.3).
  void Setup();

  // Forks the job processes, spread round-robin over live cells; returns
  // their pids. `task_group` stays -1: jobs are independent processes.
  std::vector<hive::ProcId> Start();

  // After completion: validates every output file written by a finished job
  // against its reference pattern. Returns the number of corrupt files.
  int ValidateOutputs();

  // Pids of jobs that finished successfully.
  int CompletedJobs() const;

  const std::vector<hive::ProcId>& pids() const { return pids_; }

 private:
  std::string SourcePath(int job) const;
  std::string OutputPath(int job) const;
  std::unique_ptr<hive::Behavior> MakeJob(int job, hive::CellId cell);

  hive::HiveSystem* system_;
  PmakeParams params_;
  std::vector<hive::ProcId> pids_;
  std::vector<hive::CellId> job_cells_;
};

}  // namespace workloads

#endif  // HIVE_SRC_WORKLOADS_PMAKE_H_
