#include "src/workloads/pmake.h"

#include "src/base/log.h"
#include "src/core/filesystem.h"

namespace workloads {
namespace {

constexpr hive::VirtAddr kTextVa = 0x10000000;
constexpr hive::VirtAddr kPrivateVa = 0x20000000;
constexpr hive::VirtAddr kAnonVa = 0x30000000;
constexpr hive::VirtAddr kScratchVa = 0x38000000;

}  // namespace

PmakeWorkload::PmakeWorkload(hive::HiveSystem* system, const PmakeParams& params)
    : system_(system), params_(params) {}

std::string PmakeWorkload::SourcePath(int job) const {
  return "/src/" + std::to_string(params_.name_seed) + "/file" + std::to_string(job) + ".c";
}

std::string PmakeWorkload::OutputPath(int job) const {
  return "/tmp/" + std::to_string(params_.name_seed) + "/file" + std::to_string(job) + ".o";
}

void PmakeWorkload::Setup() {
  hive::Cell& server = system_->cell(params_.file_server);
  hive::Ctx ctx = server.MakeCtx();
  const uint64_t page_size = system_->machine().mem().page_size();

  auto create_and_warm = [&](const std::string& path, uint64_t seed, uint64_t size) {
    auto id = server.fs().Create(ctx, path, PatternData(seed, size));
    CHECK(id.ok()) << "pmake setup: create " << path << " failed";
    // Warm the file server's cache (the paper warms caches before measuring).
    const uint64_t pages = (size + page_size - 1) / page_size;
    for (uint64_t p = 0; p < pages; ++p) {
      auto got = server.fs().GetPageLocal(ctx, id->vnode, p, /*want_write=*/false);
      CHECK(got.ok());
      (*got)->refcount--;
    }
  };

  create_and_warm("/bin/" + std::to_string(params_.name_seed) + "/cc",
                  params_.name_seed * 7, params_.shared_text_pages * page_size);
  for (int job = 0; job < params_.jobs; ++job) {
    create_and_warm(SourcePath(job), params_.name_seed * 1000 + static_cast<uint64_t>(job),
                    params_.source_bytes);
    create_and_warm("/hdr/" + std::to_string(params_.name_seed) + "/work" +
                        std::to_string(job) + ".dat",
                    params_.name_seed * 3000 + static_cast<uint64_t>(job),
                    params_.private_file_pages * page_size);
    // Empty output files in /tmp, homed on the file server.
    auto id = server.fs().Create(ctx, OutputPath(job), {});
    CHECK(id.ok());
    // Write-mapped scratch file in /tmp (compiler temp data).
    if (params_.scratch_pages > 0) {
      auto scratch = server.fs().Create(
          ctx, "/tmp/" + std::to_string(params_.name_seed) + "/scratch" +
                   std::to_string(job),
          PatternData(1, params_.scratch_pages * page_size));
      CHECK(scratch.ok());
    }
  }
}

std::unique_ptr<hive::Behavior> PmakeWorkload::MakeJob(int job, hive::CellId cell) {
  (void)cell;
  auto behavior = std::make_unique<ScriptedBehavior>("pmake-job-" + std::to_string(job));
  const uint64_t page_size = system_->machine().mem().page_size();
  const std::string prefix = std::to_string(params_.name_seed);

  auto src_fd = std::make_shared<int>(-1);
  auto cc_fd = std::make_shared<int>(-1);
  auto work_fd = std::make_shared<int>(-1);
  auto out_fd = std::make_shared<int>(-1);

  // Header lookups and stats against the file server.
  behavior->Add(OpMetadataOps(params_.metadata_ops, params_.file_server));

  // Read the source.
  behavior->Add(OpOpen(SourcePath(job), src_fd));
  behavior->Add(OpRead(src_fd, 0, params_.source_bytes,
                       params_.name_seed * 1000 + static_cast<uint64_t>(job)));
  behavior->Add(OpClose(src_fd));

  // Map and fault the shared compiler text.
  behavior->Add(OpOpen("/bin/" + prefix + "/cc", cc_fd));
  behavior->Add(OpMapFile(cc_fd, kTextVa, params_.shared_text_pages * page_size,
                          /*writable=*/false));
  behavior->Add(OpFaultRange(kTextVa, params_.shared_text_pages, /*write=*/false));

  // Map and fault the job's private data file.
  behavior->Add(OpOpen("/hdr/" + prefix + "/work" + std::to_string(job) + ".dat", work_fd));
  behavior->Add(OpMapFile(work_fd, kPrivateVa, params_.private_file_pages * page_size,
                          /*writable=*/false));
  behavior->Add(OpFaultRange(kPrivateVa, params_.private_file_pages, /*write=*/false));

  // Private anonymous working set.
  behavior->Add(OpMapAnon(kAnonVa, params_.anon_pages * page_size, /*writable=*/true));
  behavior->Add(OpFaultRange(kAnonVa, params_.anon_pages, /*write=*/true));

  // Write-mapped scratch file on the /tmp server: the only write-shared
  // firewall grants pmake produces (section 4.2: ~15 pages per sample).
  auto scratch_fd = std::make_shared<int>(-1);
  if (params_.scratch_pages > 0) {
    behavior->Add(OpOpen("/tmp/" + prefix + "/scratch" + std::to_string(job), scratch_fd));
    behavior->Add(OpMapFile(scratch_fd, kScratchVa, params_.scratch_pages * page_size,
                            /*writable=*/true));
    behavior->Add(OpFaultRange(kScratchVa, params_.scratch_pages, /*write=*/true));
    // Store traffic to the write-shared scratch pages: the remote write
    // misses whose latency the firewall check raises (section 4.2).
    behavior->Add(OpTouchMapped(kScratchVa, params_.scratch_pages, /*write=*/true,
                                /*misses_per_page=*/16));
  }

  // Compile.
  behavior->AddLocal(OpCompute(params_.compute_per_job));

  // Write the object file to /tmp.
  behavior->Add(OpOpen(OutputPath(job), out_fd));
  behavior->Add(OpWrite(out_fd, 0, params_.output_bytes,
                        params_.name_seed * 2000 + static_cast<uint64_t>(job)));
  behavior->Add(OpClose(out_fd));
  behavior->Add(OpClose(cc_fd));
  behavior->Add(OpClose(work_fd));
  if (params_.scratch_pages > 0) {
    behavior->Add(OpClose(scratch_fd));
  }
  return behavior;
}

std::vector<hive::ProcId> PmakeWorkload::Start() {
  const std::vector<hive::CellId> live = system_->LiveCells();
  CHECK(!live.empty());
  hive::Cell& server = system_->cell(live.front());
  hive::Ctx ctx = server.MakeCtx();
  for (int job = 0; job < params_.jobs; ++job) {
    const hive::CellId cell = live[static_cast<size_t>(job) % live.size()];
    auto pid = system_->Fork(ctx, cell, MakeJob(job, cell));
    CHECK(pid.ok());
    pids_.push_back(*pid);
    job_cells_.push_back(cell);
  }
  return pids_;
}

int PmakeWorkload::CompletedJobs() const {
  int completed = 0;
  for (size_t i = 0; i < pids_.size(); ++i) {
    const hive::CellId cell_id = system_->FindProcessCell(pids_[i]);
    if (cell_id == hive::kInvalidCell || !system_->cell(cell_id).alive()) {
      continue;
    }
    hive::Process* proc = system_->cell(cell_id).sched().FindProcess(pids_[i]);
    if (proc != nullptr && proc->state() == hive::ProcState::kExited) {
      ++completed;
    }
  }
  return completed;
}

int PmakeWorkload::ValidateOutputs() {
  if (!system_->cell(params_.file_server).alive()) {
    return -1;  // Output files unavailable; nothing to validate.
  }
  hive::Cell& server = system_->cell(params_.file_server);
  int corrupt = 0;
  for (int job = 0; job < params_.jobs; ++job) {
    // Only validate outputs of jobs that claim success.
    const hive::CellId cell_id = system_->FindProcessCell(pids_[static_cast<size_t>(job)]);
    if (cell_id == hive::kInvalidCell || !system_->cell(cell_id).alive()) {
      continue;
    }
    hive::Process* proc =
        system_->cell(cell_id).sched().FindProcess(pids_[static_cast<size_t>(job)]);
    if (proc == nullptr || proc->state() != hive::ProcState::kExited) {
      continue;
    }
    auto file_id = system_->LookupPath(OutputPath(job));
    if (!file_id.ok()) {
      ++corrupt;
      continue;
    }
    const hive::Vnode* vnode = server.fs().FindVnode(file_id->vnode);
    if (vnode == nullptr || vnode->disk_image.size() < params_.output_bytes) {
      ++corrupt;
      continue;
    }
    std::vector<uint8_t> disk(vnode->disk_image.begin(),
                              vnode->disk_image.begin() +
                                  static_cast<int64_t>(params_.output_bytes));
    const uint64_t seed = params_.name_seed * 2000 + static_cast<uint64_t>(job);
    if (Checksum(disk) != PatternChecksum(seed, params_.output_bytes)) {
      ++corrupt;
    }
  }
  return corrupt;
}

}  // namespace workloads
