#include "src/workloads/workload.h"

#include "src/base/log.h"
#include "src/core/filesystem.h"
#include "src/flash/bus_error.h"

namespace workloads {

namespace {

// Appends bytes [data->size(), size) of stream `seed`. `*x` carries the
// generator state for the next byte (advanced once per 8-byte block); pass
// the freshly seeded state when data is empty.
void ExtendPattern(uint64_t seed, size_t size, std::vector<uint8_t>* data, uint64_t* x) {
  (void)seed;
  size_t i = data->size();
  data->reserve(size);
  for (; i < size; ++i) {
    if (i % 8 == 0) {
      *x ^= *x << 13;
      *x ^= *x >> 7;
      *x ^= *x << 17;
    }
    data->push_back(static_cast<uint8_t>(*x >> ((i % 8) * 8)));
  }
}

uint64_t SeedState(uint64_t seed) { return seed * 0x9E3779B97F4A7C15ull + 1; }

}  // namespace

std::vector<uint8_t> PatternData(uint64_t seed, size_t size) {
  std::vector<uint8_t> data;
  uint64_t x = SeedState(seed);
  ExtendPattern(seed, size, &data, &x);
  return data;
}

const std::vector<uint8_t>& PatternRef(uint64_t seed, size_t min_size) {
  struct Entry {
    uint64_t seed = 0;
    uint64_t x = 0;  // Generator state for the byte after data.back().
    uint64_t last_use = 0;
    std::vector<uint8_t> data;
  };
  // Workloads interleave a handful of live streams per thread; a small LRU
  // array covers them without unbounded growth across scenarios.
  constexpr size_t kMaxStreams = 8;
  thread_local std::vector<Entry> cache;
  thread_local uint64_t tick = 0;
  ++tick;
  for (Entry& entry : cache) {
    if (entry.seed == seed) {
      if (entry.data.size() < min_size) {
        // Streams are generated in whole 8-byte blocks so the saved state
        // lines up with the next byte.
        ExtendPattern(seed, (min_size + 7) / 8 * 8, &entry.data, &entry.x);
      }
      entry.last_use = tick;
      return entry.data;
    }
  }
  if (cache.size() >= kMaxStreams) {
    size_t victim = 0;
    for (size_t i = 1; i < cache.size(); ++i) {
      if (cache[i].last_use < cache[victim].last_use) {
        victim = i;
      }
    }
    cache.erase(cache.begin() + static_cast<ptrdiff_t>(victim));
  }
  Entry entry;
  entry.seed = seed;
  entry.x = SeedState(seed);
  entry.last_use = tick;
  ExtendPattern(seed, (min_size + 7) / 8 * 8, &entry.data, &entry.x);
  cache.push_back(std::move(entry));
  return cache.back().data;
}

uint64_t Checksum(const std::vector<uint8_t>& data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t PatternChecksum(uint64_t seed, size_t size) {
  const std::vector<uint8_t>& data = PatternRef(seed, size);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

StepOutcome ScriptedBehavior::Step(Ctx& ctx, Process& proc) {
  if (next_ >= ops_.size()) {
    return StepOutcome::kDone;
  }
  const size_t index = next_;
  const StepOutcome outcome = ops_[index](ctx, proc);
  switch (outcome) {
    case StepOutcome::kContinue:
      // An op may keep internal state and demand re-execution by not
      // signalling completion; ops below advance by bumping next_ through
      // the sentinel convention: they return kContinue only when complete.
      next_ = index + 1;
      if (next_ >= ops_.size()) {
        return StepOutcome::kDone;
      }
      return StepOutcome::kContinue;
    case StepOutcome::kBlocked:
      // The same op re-runs on wake; blocking ops keep their own state to
      // know they already arrived/waited.
      return StepOutcome::kBlocked;
    case StepOutcome::kDone:
      // The op wants to repeat next Step (multi-step op in progress).
      return StepOutcome::kContinue;
    case StepOutcome::kFailed:
      return StepOutcome::kFailed;
  }
  return StepOutcome::kFailed;
}

namespace {

// Multi-step ops signal "not finished yet" by returning kDone, which
// ScriptedBehavior::Step translates to "repeat this op" (see above). These
// helpers make the convention readable.
constexpr StepOutcome kOpRepeat = StepOutcome::kDone;
constexpr StepOutcome kOpComplete = StepOutcome::kContinue;

}  // namespace

OpFn OpCompute(Time total, Time chunk) {
  auto remaining = std::make_shared<Time>(total);
  return [remaining, chunk](Ctx& ctx, Process&) -> StepOutcome {
    const Time slice = std::min(*remaining, chunk);
    ctx.Charge(slice);
    *remaining -= slice;
    return *remaining > 0 ? kOpRepeat : kOpComplete;
  };
}

OpFn OpOpen(std::string path, std::shared_ptr<int> fd_out) {
  return [path = std::move(path), fd_out](Ctx& ctx, Process& proc) -> StepOutcome {
    auto handle = ctx.cell->fs().Open(ctx, path);
    if (!handle.ok()) {
      proc.exit_reason = "open failed: " + std::string(handle.status().name());
      return StepOutcome::kFailed;
    }
    *fd_out = proc.AddFile(*handle);
    return kOpComplete;
  };
}

OpFn OpCreate(std::string path, uint64_t seed, uint64_t size) {
  return [path = std::move(path), seed, size](Ctx& ctx, Process& proc) -> StepOutcome {
    const std::vector<uint8_t> data = PatternData(seed, size);
    auto id = ctx.cell->fs().Create(ctx, path, data);
    if (!id.ok()) {
      proc.exit_reason = "create failed";
      return StepOutcome::kFailed;
    }
    return kOpComplete;
  };
}

OpFn OpRead(std::shared_ptr<int> fd, uint64_t offset, uint64_t len, uint64_t verify_seed) {
  return [fd, offset, len, verify_seed](Ctx& ctx, Process& proc) -> StepOutcome {
    hive::FileHandle* handle = proc.GetFile(*fd);
    if (handle == nullptr) {
      return StepOutcome::kFailed;
    }
    std::vector<uint8_t> buf(len);
    base::Status status = ctx.cell->fs().Read(ctx, *handle, offset, std::span<uint8_t>(buf));
    if (!status.ok()) {
      proc.exit_reason = "read failed: " + std::string(status.name());
      return StepOutcome::kFailed;
    }
    if (verify_seed != 0) {
      const std::vector<uint8_t>& expect = PatternRef(verify_seed, offset + len);
      for (uint64_t i = 0; i < len; ++i) {
        if (buf[i] != expect[offset + i]) {
          proc.exit_reason = "read data corrupt";
          return StepOutcome::kFailed;
        }
      }
    }
    return kOpComplete;
  };
}

OpFn OpWrite(std::shared_ptr<int> fd, uint64_t offset, uint64_t len, uint64_t seed) {
  return [fd, offset, len, seed](Ctx& ctx, Process& proc) -> StepOutcome {
    hive::FileHandle* handle = proc.GetFile(*fd);
    if (handle == nullptr) {
      return StepOutcome::kFailed;
    }
    const std::vector<uint8_t>& all = PatternRef(seed, offset + len);
    base::Status status = ctx.cell->fs().Write(
        ctx, *handle, offset, std::span<const uint8_t>(all.data() + offset, len));
    if (!status.ok()) {
      proc.exit_reason = "write failed: " + std::string(status.name());
      return StepOutcome::kFailed;
    }
    return kOpComplete;
  };
}

OpFn OpClose(std::shared_ptr<int> fd) {
  return [fd](Ctx& ctx, Process& proc) -> StepOutcome {
    hive::FileHandle* handle = proc.GetFile(*fd);
    if (handle != nullptr) {
      ctx.cell->fs().Close(ctx, *handle);
      proc.RemoveFile(*fd);
    }
    return kOpComplete;
  };
}

OpFn OpMapFile(std::shared_ptr<int> fd, hive::VirtAddr va, uint64_t len, bool writable) {
  return [fd, va, len, writable](Ctx& ctx, Process& proc) -> StepOutcome {
    hive::FileHandle* handle = proc.GetFile(*fd);
    if (handle == nullptr) {
      return StepOutcome::kFailed;
    }
    base::Status status = proc.address_space().MapFile(ctx, va, len, *handle, writable);
    return status.ok() ? kOpComplete : StepOutcome::kFailed;
  };
}

OpFn OpMapAnon(hive::VirtAddr va, uint64_t len, bool writable) {
  return [va, len, writable](Ctx& ctx, Process& proc) -> StepOutcome {
    base::Status status = proc.address_space().MapAnon(ctx, va, len, writable);
    return status.ok() ? kOpComplete : StepOutcome::kFailed;
  };
}

OpFn OpFaultRange(hive::VirtAddr va, uint64_t pages, bool write, uint64_t per_step) {
  auto done = std::make_shared<Counter>();
  return [va, pages, write, per_step, done](Ctx& ctx, Process& proc) -> StepOutcome {
    const uint64_t page_size = ctx.cell->machine().mem().page_size();
    const uint64_t end = std::min(pages, done->value + per_step);
    for (; done->value < end; ++done->value) {
      base::Status status = PageFault(ctx, proc, va + done->value * page_size, write);
      if (!status.ok()) {
        proc.exit_reason = "page fault failed: " + std::string(status.name());
        return StepOutcome::kFailed;
      }
      if (!ctx.cell->alive()) {
        return StepOutcome::kFailed;
      }
    }
    return done->value < pages ? kOpRepeat : kOpComplete;
  };
}

OpFn OpTouchMapped(hive::VirtAddr va, uint64_t pages, bool write, int misses_per_page,
                   uint64_t per_step, hive::Time remote_write_base_ns) {
  auto done = std::make_shared<Counter>();
  return [va, pages, write, misses_per_page, per_step, remote_write_base_ns,
          done](Ctx& ctx, Process& proc) -> StepOutcome {
    flash::Machine& machine = ctx.cell->machine();
    const uint64_t page_size = machine.mem().page_size();
    const bool checking = machine.firewall().checking_enabled();
    const uint64_t end = std::min(pages, done->value + per_step);
    for (; done->value < end; ++done->value) {
      const hive::VirtAddr page_va = (va + done->value * page_size) / page_size * page_size;
      hive::Mapping* mapping = proc.address_space().FindMapping(page_va);
      if (mapping == nullptr) {
        // Fault it in first.
        base::Status status = PageFault(ctx, proc, page_va, write);
        if (!status.ok()) {
          proc.exit_reason = "touch fault failed: " + std::string(status.name());
          return StepOutcome::kFailed;
        }
        mapping = proc.address_space().FindMapping(page_va);
        if (mapping == nullptr) {
          return StepOutcome::kFailed;
        }
      }
      const bool remote = mapping->pfdat->extended;
      for (int m = 0; m < misses_per_page; ++m) {
        if (write) {
          ctx.Charge(remote ? machine.cache().RemoteWriteMiss(checking, remote_write_base_ns)
                            : machine.cache().LocalMiss());
        } else {
          ctx.Charge(remote ? machine.cache().RemoteReadMiss() : machine.cache().LocalMiss());
        }
      }
      // One real access per page so the firewall is genuinely exercised.
      try {
        if (write) {
          const uint64_t value = machine.mem().ReadValue<uint64_t>(ctx.cpu,
                                                                   mapping->pfdat->frame);
          machine.mem().WriteValue<uint64_t>(ctx.cpu, mapping->pfdat->frame, value + 1);
        } else {
          (void)machine.mem().ReadValue<uint64_t>(ctx.cpu, mapping->pfdat->frame);
        }
        // hive-lint: allow(R3): models the hardware protection trap delivered to user code; handled by re-fault or kill.
      } catch (const flash::BusError&) {
        // A user-level protection trap: under write-ownership firewall
        // policies our grant may have been evicted by another writer. The
        // kernel re-faults for write ownership and retries once; a second
        // trap (or a dead home) kills the process.
        if (write && mapping->pfdat->imported_from != hive::kInvalidCell) {
          mapping->pfdat->import_writable = false;  // Force the upgrade RPC.
          ctx.cell->fs().ReleasePage(ctx, mapping->pfdat);
          proc.address_space().RemoveMapping(page_va);
          base::Status status = PageFault(ctx, proc, page_va, /*write=*/true);
          mapping = proc.address_space().FindMapping(page_va);
          if (status.ok() && mapping != nullptr) {
            try {
              const uint64_t value =
                  machine.mem().ReadValue<uint64_t>(ctx.cpu, mapping->pfdat->frame);
              machine.mem().WriteValue<uint64_t>(ctx.cpu, mapping->pfdat->frame, value + 1);
              continue;
              // hive-lint: allow(R3): second trap after the retry falls through to killing the process.
            } catch (const flash::BusError&) {
            }
          }
        }
        proc.exit_reason = "bus error on user access";
        return StepOutcome::kFailed;
      }
    }
    return done->value < pages ? kOpRepeat : kOpComplete;
  };
}

OpFn OpBarrier(std::shared_ptr<hive::UserBarrier> barrier) {
  auto arrived = std::make_shared<bool>(false);
  return [barrier, arrived](Ctx& ctx, Process& proc) -> StepOutcome {
    if (*arrived) {
      // Woken after the barrier released us.
      *arrived = false;
      return kOpComplete;
    }
    const StepOutcome outcome = barrier->Arrive(ctx, proc);
    if (outcome == StepOutcome::kBlocked) {
      *arrived = true;
    }
    return outcome;
  };
}

OpFn OpFork(hive::CellId target, BehaviorFactory factory,
            std::shared_ptr<std::vector<hive::ProcId>> pids, int64_t task_group,
            bool fork_from_self) {
  return [target, factory, pids, task_group, fork_from_self](Ctx& ctx,
                                                             Process& proc) -> StepOutcome {
    hive::CellId where = target;
    if (where == hive::kInvalidCell) {
      const hive::WaxHints& hints = ctx.cell->wax_hints();
      where = hints.valid && hints.preferred_fork_target != hive::kInvalidCell
                  ? hints.preferred_fork_target
                  : ctx.cell->id();
    }
    auto pid = ctx.cell->system()->Fork(ctx, where, factory(), task_group,
                                        fork_from_self ? &proc : nullptr);
    if (!pid.ok()) {
      proc.exit_reason = "fork failed: " + std::string(pid.status().name());
      return StepOutcome::kFailed;
    }
    pids->push_back(*pid);
    return kOpComplete;
  };
}

OpFn OpWaitAll(std::shared_ptr<std::vector<hive::ProcId>> pids) {
  auto index = std::make_shared<Counter>();
  return [pids, index](Ctx& ctx, Process& proc) -> StepOutcome {
    ctx.Charge(10 * hive::kMicrosecond);  // wait() syscall.
    while (index->value < pids->size()) {
      const hive::ProcId child = (*pids)[index->value];
      if (ctx.cell->system()->ProcessFinished(child)) {
        ++index->value;
        continue;
      }
      if (ctx.cell->system()->AddExitWaiter(child, &proc)) {
        return StepOutcome::kBlocked;  // Re-checked (same op repeats) on wake.
      }
    }
    return kOpComplete;
  };
}

OpFn OpMetadataOps(int count, hive::CellId remote_home, int per_step) {
  auto done = std::make_shared<Counter>();
  return [count, remote_home, per_step, done](Ctx& ctx, Process& proc) -> StepOutcome {
    (void)proc;
    const hive::KernelCosts& costs = ctx.cell->costs();
    const bool remote = remote_home != hive::kInvalidCell && remote_home != ctx.cell->id();
    const uint64_t end = std::min<uint64_t>(static_cast<uint64_t>(count),
                                            done->value + static_cast<uint64_t>(per_step));
    for (; done->value < end; ++done->value) {
      ctx.cell->ChargeSyscallTax(ctx);
      ctx.Charge(costs.open_local_ns);
      if (remote) {
        ctx.Charge(costs.open_remote_extra_ns);
      }
    }
    return done->value < static_cast<uint64_t>(count) ? kOpRepeat : kOpComplete;
  };
}

}  // namespace workloads
